package stm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any interleaved sequence of single-box read-modify-write
// transactions executed with a retry loop, the STM produces the same final
// state as applying the same successful operations to a plain map, and the
// commit clock equals the number of successful update commits.
func TestQuickLinearizedCounterOps(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewStore()
		model := make(map[string]int)
		const boxes = 4
		for i := 0; i < boxes; i++ {
			id := fmt.Sprintf("b%d", i)
			if _, err := s.CreateBox(id, 0); err != nil {
				return false
			}
			model[id] = 0
		}

		commits := int64(0)
		for i, op := range ops {
			id := fmt.Sprintf("b%d", int(op)%boxes)
			delta := int(op)/boxes%7 - 3
			tx := s.Begin(false)
			v, err := tx.Read(id)
			if err != nil {
				return false
			}
			if err := tx.Write(id, v.(int)+delta); err != nil {
				return false
			}
			if err := tx.Commit(TxnID{Replica: 1, Seq: uint64(i + 1)}); err != nil {
				// Sequential execution must never conflict.
				return false
			}
			commits++
			model[id] += delta
		}

		if s.CommitTimestamp() != commits {
			return false
		}
		tx := s.Begin(true)
		defer tx.Abort()
		for id, want := range model {
			got, err := tx.Read(id)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots are immutable — a transaction's reads are unaffected
// by any number of later commits, for random workloads.
func TestQuickSnapshotImmutability(t *testing.T) {
	f := func(writes []uint8, seed int64) bool {
		s := NewStore()
		const boxes = 3
		for i := 0; i < boxes; i++ {
			if _, err := s.CreateBox(fmt.Sprintf("b%d", i), i*100); err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))

		// Pin a snapshot and record its view.
		pinned := s.Begin(false)
		defer pinned.Abort()
		view := make(map[string]any, boxes)
		for i := 0; i < boxes; i++ {
			id := fmt.Sprintf("b%d", i)
			v, err := pinned.Read(id)
			if err != nil {
				return false
			}
			view[id] = v
		}

		for i, w := range writes {
			id := fmt.Sprintf("b%d", int(w)%boxes)
			s.ApplyWriteSet(
				TxnID{Replica: 2, Seq: uint64(i + 1)},
				WriteSet{{Box: id, Value: rng.Int()}},
			)
		}

		for id, want := range view {
			got, err := pinned.Read(id)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot/Restore is lossless — restoring a snapshot reproduces
// the exact latest state and clock for random write-set histories.
func TestQuickSnapshotRestoreLossless(t *testing.T) {
	f := func(history [][3]uint8) bool {
		src := NewStore()
		for i, h := range history {
			ws := WriteSet{
				{Box: fmt.Sprintf("b%d", int(h[0])%8), Value: int(h[1])},
				{Box: fmt.Sprintf("c%d", int(h[2])%8), Value: int(h[0]) + int(h[2])},
			}
			src.ApplyWriteSet(TxnID{Replica: 3, Seq: uint64(i + 1)}, ws)
		}

		snap := src.Snapshot()
		dst := NewStore()
		dst.Restore(snap)

		if dst.CommitTimestamp() != src.CommitTimestamp() {
			return false
		}
		back := dst.Snapshot()
		if len(back.Boxes) != len(snap.Boxes) || back.Clock != snap.Clock {
			return false
		}
		for i := range snap.Boxes {
			a, b := snap.Boxes[i], back.Boxes[i]
			if a.Box != b.Box || a.Value != b.Value || a.Writer != b.Writer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: validation fails exactly when a read box was overwritten after
// the snapshot.
func TestQuickValidationPrecision(t *testing.T) {
	f := func(readBox, writeBox uint8) bool {
		s := NewStore()
		const boxes = 5
		for i := 0; i < boxes; i++ {
			if _, err := s.CreateBox(fmt.Sprintf("b%d", i), 0); err != nil {
				return false
			}
		}
		rID := fmt.Sprintf("b%d", int(readBox)%boxes)
		wID := fmt.Sprintf("b%d", int(writeBox)%boxes)

		tx := s.Begin(false)
		defer tx.Abort()
		if _, err := tx.Read(rID); err != nil {
			return false
		}
		s.ApplyWriteSet(TxnID{Replica: 2, Seq: 1}, WriteSet{{Box: wID, Value: 1}})

		wantValid := rID != wID
		return tx.Validate() == wantValid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
