package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/alcstm/alc/internal/transport"
)

// Tests for the fine-grained commit pipeline: these run many committers
// concurrently and check the invariants the old global commit lock gave for
// free — no lost updates, monotone per-box histories, snapshot consistency,
// and a commit clock that counts exactly the committed write-sets.

// TestParallelDisjointCommits runs committers over disjoint boxes and checks
// every commit landed: each box ends at its committer's increment count and
// the clock advanced once per commit.
func TestParallelDisjointCommits(t *testing.T) {
	s := NewStore()
	const workers = 16
	const perWorker = 200
	for w := 0; w < workers; w++ {
		if _, err := s.CreateBox(fmt.Sprintf("d%02d", w), 0); err != nil {
			t.Fatal(err)
		}
	}
	start := s.CommitTimestamp()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box := fmt.Sprintf("d%02d", w)
			for i := 0; i < perWorker; i++ {
				tx := s.Begin(false)
				v, err := tx.Read(box)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Write(box, v.(int)+1); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: uint64(i + 1)}); err != nil {
					t.Errorf("disjoint commit conflicted: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := s.CommitTimestamp()-start, int64(workers*perWorker); got != want {
		t.Fatalf("clock advanced %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		tx := s.Begin(true)
		v, err := tx.Read(fmt.Sprintf("d%02d", w))
		tx.Abort()
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != perWorker {
			t.Fatalf("box d%02d = %d, want %d", w, v, perWorker)
		}
	}
}

// TestParallelConflictingCommits hammers a single box from many goroutines
// with retry-on-conflict loops: the final value must equal the number of
// successful commits (no lost updates), and the per-box writer history must
// contain every successful writer exactly once.
func TestParallelConflictingCommits(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateBox("hot", 0); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 100
	var commits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx := s.Begin(false)
					v, err := tx.Read("hot")
					if err != nil {
						t.Error(err)
						return
					}
					_ = tx.Write("hot", v.(int)+1)
					err = tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: uint64(i + 1)})
					if err == nil {
						commits.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	tx := s.Begin(true)
	v, err := tx.Read("hot")
	tx.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if int64(v.(int)) != commits.Load() {
		t.Fatalf("hot = %d, want %d successful commits (lost update)", v, commits.Load())
	}
	if int64(workers*perWorker) != commits.Load() {
		t.Fatalf("commits = %d, want %d", commits.Load(), workers*perWorker)
	}
	writers := s.VersionWriters("hot")
	seen := make(map[TxnID]bool, len(writers))
	for _, w := range writers {
		if !w.IsZero() && seen[w] {
			t.Fatalf("writer %v appears twice in history", w)
		}
		seen[w] = true
	}
}

// TestParallelSnapshotConsistency maintains the invariant x == y under
// concurrent read-modify-write transactions of {x,y} while readers assert
// that every snapshot they observe satisfies it. A reader seeing x != y
// would mean a half-installed commit became visible.
func TestParallelSnapshotConsistency(t *testing.T) {
	s := NewStore()
	for _, id := range []string{"x", "y"} {
		if _, err := s.CreateBox(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: increment x and y together, retrying conflicts.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := s.Begin(false)
				xv, err := tx.Read("x")
				if err != nil {
					t.Error(err)
					return
				}
				yv, err := tx.Read("y")
				if err != nil {
					t.Error(err)
					return
				}
				_ = tx.Write("x", xv.(int)+1)
				_ = tx.Write("y", yv.(int)+1)
				seq++
				if err := tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: seq}); err != nil && !errors.Is(err, ErrConflict) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: every snapshot must have x == y.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tx := s.Begin(true)
				xv, err := tx.Read("x")
				if err != nil {
					t.Error(err)
					return
				}
				yv, err := tx.Read("y")
				if err != nil {
					t.Error(err)
					return
				}
				tx.Abort()
				if xv.(int) != yv.(int) {
					t.Errorf("torn snapshot: x=%d y=%d", xv, yv)
					return
				}
			}
		}()
	}
	// Let readers finish, then stop writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 4; i++ {
		runtime.Gosched()
	}
	close(stop)
	<-done
}

// TestSnapshotDuringParallelCommits takes full store snapshots while
// committers are running and checks each snapshot is internally consistent:
// the x/y pair invariant holds inside the captured state too.
func TestSnapshotDuringParallelCommits(t *testing.T) {
	s := NewStore()
	for _, id := range []string{"x", "y"} {
		if _, err := s.CreateBox(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := s.Begin(false)
				xv, _ := tx.Read("x")
				yv, _ := tx.Read("y")
				_ = tx.Write("x", xv.(int)+1)
				_ = tx.Write("y", yv.(int)+1)
				seq++
				if err := tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: seq}); err != nil && !errors.Is(err, ErrConflict) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := s.Snapshot()
		vals := make(map[string]int, 2)
		for _, bs := range snap.Boxes {
			vals[bs.Box] = bs.Value.(int)
		}
		if vals["x"] != vals["y"] {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d torn: x=%d y=%d", i, vals["x"], vals["y"])
		}
	}
	close(stop)
	wg.Wait()

	// A snapshot restored into a fresh store must round-trip clock and state.
	snap := s.Snapshot()
	dst := NewStore()
	dst.Restore(snap)
	if dst.CommitTimestamp() != snap.Clock {
		t.Fatalf("restored clock %d, want %d", dst.CommitTimestamp(), snap.Clock)
	}
	// And the restored store must accept new commits with ascending stamps.
	ts := dst.ApplyWriteSet(TxnID{Replica: 9, Seq: 1}, WriteSet{{Box: "x", Value: -1}})
	if ts != snap.Clock+1 {
		t.Fatalf("post-restore commit ts %d, want %d", ts, snap.Clock+1)
	}
}

// TestValidateConflicts checks the merged validate+diagnose call: valid
// read-sets return (true, nil); invalidated ones return every stale entry
// with the writer that overwrote it.
func TestValidateConflicts(t *testing.T) {
	s := NewStore()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := s.CreateBox(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.CommitTimestamp()
	rs := ReadSet{{Box: "a"}, {Box: "b"}, {Box: "c"}, {Box: "missing"}}

	ok, conflicts := s.ValidateConflicts(snap, rs)
	if !ok || conflicts != nil {
		t.Fatalf("fresh read-set: got ok=%v conflicts=%v", ok, conflicts)
	}

	w1 := TxnID{Replica: 1, Seq: 1}
	w2 := TxnID{Replica: 2, Seq: 7}
	s.ApplyWriteSet(w1, WriteSet{{Box: "a", Value: 1}})
	s.ApplyWriteSet(w2, WriteSet{{Box: "c", Value: 2}})

	ok, conflicts = s.ValidateConflicts(snap, rs)
	if ok {
		t.Fatal("stale read-set validated")
	}
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %v, want entries for a and c", conflicts)
	}
	got := map[string]TxnID{}
	for _, c := range conflicts {
		got[c.Box] = c.Writer
	}
	if got["a"] != w1 || got["c"] != w2 {
		t.Fatalf("conflict writers = %v, want a->%v c->%v", got, w1, w2)
	}
	// Must agree with the separate calls it replaces.
	if s.Validate(snap, rs) {
		t.Fatal("Validate disagrees with ValidateConflicts")
	}
	if lc := s.Conflicts(snap, rs); len(lc) != 2 {
		t.Fatalf("Conflicts() = %v, want 2 entries", lc)
	}
}

// TestStoreStats sanity-checks the commit-pipeline counters.
func TestStoreStats(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateBox("x", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.ApplyWriteSet(TxnID{Replica: 1, Seq: uint64(i + 1)}, WriteSet{{Box: "x", Value: i}})
	}
	s.ApplyWriteSets([]TxnWriteSet{
		{Writer: TxnID{Replica: 2, Seq: 1}, WS: WriteSet{{Box: "x", Value: 10}}},
		{Writer: TxnID{Replica: 2, Seq: 2}, WS: WriteSet{{Box: "y", Value: 11}}},
	})
	s.GC()

	st := s.Stats()
	if st.Applied != 7 {
		t.Fatalf("Applied = %d, want 7", st.Applied)
	}
	if st.GCRuns != 1 {
		t.Fatalf("GCRuns = %d, want 1", st.GCRuns)
	}
	if st.GCPruned == 0 {
		t.Fatal("GCPruned = 0, want > 0 (history of x had 6 dead versions)")
	}
	if st.Boxes != 2 {
		t.Fatalf("Boxes = %d, want 2", st.Boxes)
	}
	tx := s.Begin(true)
	if got := s.Stats().ActiveTxns; got != 1 {
		t.Fatalf("ActiveTxns = %d, want 1", got)
	}
	tx.Abort()
	if got := s.Stats().ActiveTxns; got != 0 {
		t.Fatalf("ActiveTxns after abort = %d, want 0", got)
	}
}

// TestParallelCommitStress is the CI stress companion (run with -race under
// the stm-stress job's GOMAXPROCS matrix): a mixed workload of disjoint
// committers, overlapping committers, batch appliers, readers, snapshots and
// GC, all concurrent, followed by full-state accounting.
func TestParallelCommitStress(t *testing.T) {
	s := NewStore()
	const (
		workers     = 12
		perWorker   = 150
		sharedBoxes = 4
	)
	for i := 0; i < sharedBoxes; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("shared%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	start := s.CommitTimestamp()
	var committed atomic.Int64
	var wg sync.WaitGroup

	// Disjoint committers: private box each.
	for w := 0; w < workers/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box := fmt.Sprintf("priv%02d", w)
			for i := 0; i < perWorker; i++ {
				tx := s.Begin(false)
				n := 0
				if v, err := tx.Read(box); err == nil {
					n = v.(int)
				}
				_ = tx.Write(box, n+1)
				if err := tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: uint64(i + 1)}); err != nil {
					t.Errorf("private-box commit failed: %v", err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}
	// Overlapping committers: random-ish shared box, retry on conflict.
	for w := workers / 2; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				box := fmt.Sprintf("shared%d", (w+i)%sharedBoxes)
				for {
					tx := s.Begin(false)
					v, err := tx.Read(box)
					if err != nil {
						t.Error(err)
						return
					}
					_ = tx.Write(box, v.(int)+1)
					err = tx.Commit(TxnID{Replica: transport.ID(w + 1), Seq: uint64(i + 1)})
					if err == nil {
						committed.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Batch applier: the remote-apply path, disjoint from everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			batch := []TxnWriteSet{
				{Writer: TxnID{Replica: 99, Seq: uint64(2*i + 1)}, WS: WriteSet{{Box: "remote0", Value: i}}},
				{Writer: TxnID{Replica: 99, Seq: uint64(2*i + 2)}, WS: WriteSet{{Box: "remote1", Value: i}}},
			}
			s.ApplyWriteSets(batch)
			committed.Add(2)
		}
	}()
	// Background churn: readers, snapshots, GC.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := s.Begin(true)
			for i := 0; i < sharedBoxes; i++ {
				if _, err := tx.Read(fmt.Sprintf("shared%d", i)); err != nil {
					t.Error(err)
				}
			}
			tx.Abort()
			s.GC()
			_ = s.Snapshot()
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()

	if got, want := s.CommitTimestamp()-start, committed.Load(); got != want {
		t.Fatalf("clock advanced %d, want %d (every commit exactly one tick)", got, want)
	}
	// Shared-box totals: sum of final values == number of shared-box commits.
	total := 0
	tx := s.Begin(true)
	for i := 0; i < sharedBoxes; i++ {
		v, err := tx.Read(fmt.Sprintf("shared%d", i))
		if err != nil {
			t.Fatal(err)
		}
		total += v.(int)
	}
	tx.Abort()
	if want := (workers - workers/2) * perWorker; total != want {
		t.Fatalf("shared commits accounted = %d, want %d (lost update)", total, want)
	}
	st := s.Stats()
	if st.Applied != committed.Load() {
		t.Fatalf("Stats.Applied = %d, want %d", st.Applied, committed.Load())
	}
}
