package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func txnID(seq uint64) TxnID { return TxnID{Replica: 1, Seq: seq} }

func mustCreate(t *testing.T, s *Store, id string, v Value) {
	t.Helper()
	if _, err := s.CreateBox(id, v); err != nil {
		t.Fatalf("CreateBox(%q): %v", id, err)
	}
}

func mustRead(t *testing.T, tx *Txn, id string) Value {
	t.Helper()
	v, err := tx.Read(id)
	if err != nil {
		t.Fatalf("Read(%q): %v", id, err)
	}
	return v
}

func TestReadInitialValue(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 10)

	tx := s.Begin(false)
	defer tx.Abort()
	if got := mustRead(t, tx, "x"); got != 10 {
		t.Fatalf("Read = %v, want 10", got)
	}
}

func TestReadMissingBox(t *testing.T) {
	s := NewStore()
	tx := s.Begin(false)
	defer tx.Abort()
	if _, err := tx.Read("nope"); !errors.Is(err, ErrNoSuchBox) {
		t.Fatalf("Read missing = %v, want ErrNoSuchBox", err)
	}
}

func TestCommitMakesWritesVisible(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 1)

	tx := s.Begin(false)
	if err := tx.Write("x", 2); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := tx.Commit(txnID(1)); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx2 := s.Begin(true)
	defer tx2.Abort()
	if got := mustRead(t, tx2, "x"); got != 2 {
		t.Fatalf("Read after commit = %v, want 2", got)
	}
	if s.CommitTimestamp() != 1 {
		t.Fatalf("CommitTimestamp = %d, want 1", s.CommitTimestamp())
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 1)
	tx := s.Begin(false)
	defer tx.Abort()
	if err := tx.Write("x", 99); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := mustRead(t, tx, "x"); got != 99 {
		t.Fatalf("Read own write = %v, want 99", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 1)

	old := s.Begin(false)
	defer old.Abort()

	w := s.Begin(false)
	if err := w.Write("x", 2); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Commit(txnID(1)); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// The old transaction still sees the old snapshot.
	if got := mustRead(t, old, "x"); got != 1 {
		t.Fatalf("old txn Read = %v, want 1 (snapshot isolation)", got)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	t1 := s.Begin(false)
	t2 := s.Begin(false)

	v1 := mustRead(t, t1, "x")
	v2 := mustRead(t, t2, "x")
	_ = t1.Write("x", v1.(int)+1)
	_ = t2.Write("x", v2.(int)+1)

	if err := t1.Commit(txnID(1)); err != nil {
		t.Fatalf("first Commit: %v", err)
	}
	if err := t2.Commit(txnID(2)); !errors.Is(err, ErrConflict) {
		t.Fatalf("second Commit = %v, want ErrConflict", err)
	}

	tx := s.Begin(true)
	defer tx.Abort()
	if got := mustRead(t, tx, "x"); got != 1 {
		t.Fatalf("x = %v after conflicting commits, want 1", got)
	}
}

func TestBlindWriteDoesNotConflict(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	t1 := s.Begin(false)
	t2 := s.Begin(false)
	_ = t1.Write("x", 1) // blind write: no read
	_ = t2.Write("x", 2)

	if err := t1.Commit(txnID(1)); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}
	// t2 never read x, so its (empty) read-set validates.
	if err := t2.Commit(txnID(2)); err != nil {
		t.Fatalf("t2 Commit: %v", err)
	}
}

func TestReadOnlyNeverAborts(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	ro := s.Begin(true)
	for i := 0; i < 10; i++ {
		w := s.Begin(false)
		_ = w.Write("x", i)
		if err := w.Commit(txnID(uint64(i + 1))); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if got := mustRead(t, ro, "x"); got != 0 {
		t.Fatalf("read-only txn sees %v, want snapshot value 0", got)
	}
	if err := ro.Commit(TxnID{}); err != nil {
		t.Fatalf("read-only Commit: %v", err)
	}
}

func TestReadOnlyWriteRejected(t *testing.T) {
	s := NewStore()
	ro := s.Begin(true)
	defer ro.Abort()
	if err := ro.Write("x", 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Write on read-only = %v, want ErrReadOnly", err)
	}
}

func TestOperationsAfterFinish(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)
	tx := s.Begin(false)
	tx.Abort()

	if _, err := tx.Read("x"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Read after abort = %v, want ErrTxnDone", err)
	}
	if err := tx.Write("x", 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Write after abort = %v, want ErrTxnDone", err)
	}
	if err := tx.Commit(txnID(1)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Commit after abort = %v, want ErrTxnDone", err)
	}
}

func TestWriteSetSortedAndDeduplicated(t *testing.T) {
	s := NewStore()
	tx := s.Begin(false)
	defer tx.Abort()
	_ = tx.Write("b", 1)
	_ = tx.Write("a", 2)
	_ = tx.Write("b", 3) // overwrite: final value wins

	ws := tx.WriteSet()
	if len(ws) != 2 {
		t.Fatalf("WriteSet len = %d, want 2", len(ws))
	}
	if ws[0].Box != "a" || ws[1].Box != "b" || ws[1].Value != 3 {
		t.Fatalf("WriteSet = %+v", ws)
	}
}

func TestReadSetRecordsFirstObservedWriter(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	w := s.Begin(false)
	_ = w.Write("x", 1)
	if err := w.Commit(txnID(7)); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx := s.Begin(false)
	defer tx.Abort()
	mustRead(t, tx, "x")
	rs := tx.ReadSet()
	if len(rs) != 1 || rs[0].Box != "x" || rs[0].Writer != txnID(7) {
		t.Fatalf("ReadSet = %+v, want [{x txn(1:7)}]", rs)
	}
}

func TestApplyRemoteWriteSet(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	remote := TxnID{Replica: 9, Seq: 1}
	ts := s.ApplyWriteSet(remote, WriteSet{{Box: "x", Value: 42}, {Box: "y", Value: "new"}})
	if ts != 1 {
		t.Fatalf("ApplyWriteSet ts = %d, want 1", ts)
	}

	tx := s.Begin(true)
	defer tx.Abort()
	if got := mustRead(t, tx, "x"); got != 42 {
		t.Fatalf("x = %v, want 42", got)
	}
	if got := mustRead(t, tx, "y"); got != "new" {
		t.Fatalf("y = %v, want new (box created by remote write-set)", got)
	}
}

func TestRemoteWriteSetInvalidatesLocalReader(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	tx := s.Begin(false)
	mustRead(t, tx, "x")

	s.ApplyWriteSet(TxnID{Replica: 2, Seq: 1}, WriteSet{{Box: "x", Value: 1}})

	if tx.Validate() {
		t.Fatal("Validate succeeded after remote update of read box")
	}
	_ = tx.Write("x", 5)
	if err := tx.Commit(txnID(1)); !errors.Is(err, ErrConflict) {
		t.Fatalf("Commit = %v, want ErrConflict", err)
	}
}

func TestValidateMissingBoxStillValid(t *testing.T) {
	s := NewStore()
	tx := s.Begin(false)
	defer tx.Abort()
	// Reading a missing box fails but leaves no read-set entry to invalidate.
	if _, err := tx.Read("ghost"); !errors.Is(err, ErrNoSuchBox) {
		t.Fatalf("Read = %v", err)
	}
	if !tx.Validate() {
		t.Fatal("Validate failed on empty read-set")
	}
}

func TestBoxCreatedAfterSnapshotInvisible(t *testing.T) {
	s := NewStore()
	tx := s.Begin(false)
	defer tx.Abort()

	s.ApplyWriteSet(TxnID{Replica: 2, Seq: 1}, WriteSet{{Box: "late", Value: 1}})

	if _, err := tx.Read("late"); !errors.Is(err, ErrNoSuchBox) {
		t.Fatalf("Read box created after snapshot = %v, want ErrNoSuchBox", err)
	}
}

func TestGCPrunesOldVersions(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)
	for i := 1; i <= 100; i++ {
		s.ApplyWriteSet(txnID(uint64(i)), WriteSet{{Box: "x", Value: i}})
	}

	pruned := s.GC()
	if pruned != 100 {
		t.Fatalf("GC pruned %d versions, want 100", pruned)
	}

	tx := s.Begin(true)
	defer tx.Abort()
	if got := mustRead(t, tx, "x"); got != 100 {
		t.Fatalf("x after GC = %v, want 100", got)
	}
}

func TestGCRespectsActiveSnapshots(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	old := s.Begin(true) // pins snapshot 0
	for i := 1; i <= 10; i++ {
		s.ApplyWriteSet(txnID(uint64(i)), WriteSet{{Box: "x", Value: i}})
	}

	s.GC()
	// The old reader must still find its version.
	if got := mustRead(t, old, "x"); got != 0 {
		t.Fatalf("pinned snapshot read = %v, want 0", got)
	}
	old.Abort()

	if pruned := s.GC(); pruned != 10 {
		t.Fatalf("GC after release pruned %d, want 10", pruned)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewStore()
	mustCreate(t, src, "a", 1)
	mustCreate(t, src, "b", "two")
	src.ApplyWriteSet(txnID(1), WriteSet{{Box: "a", Value: 10}})

	snap := src.Snapshot()
	if snap.Clock != 1 || len(snap.Boxes) != 2 {
		t.Fatalf("Snapshot = clock %d, %d boxes", snap.Clock, len(snap.Boxes))
	}

	dst := NewStore()
	dst.Restore(snap)
	if dst.CommitTimestamp() != 1 {
		t.Fatalf("restored clock = %d, want 1", dst.CommitTimestamp())
	}
	tx := dst.Begin(true)
	defer tx.Abort()
	if got := mustRead(t, tx, "a"); got != 10 {
		t.Fatalf("restored a = %v, want 10", got)
	}
	if got := mustRead(t, tx, "b"); got != "two" {
		t.Fatalf("restored b = %v, want two", got)
	}
}

func TestCreateBoxDuplicate(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)
	if _, err := s.CreateBox("x", 1); err == nil {
		t.Fatal("duplicate CreateBox succeeded")
	}
}

func TestActiveTxnsTracking(t *testing.T) {
	s := NewStore()
	if n := s.ActiveTxns(); n != 0 {
		t.Fatalf("ActiveTxns = %d, want 0", n)
	}
	t1 := s.Begin(false)
	t2 := s.Begin(true)
	if n := s.ActiveTxns(); n != 2 {
		t.Fatalf("ActiveTxns = %d, want 2", n)
	}
	t1.Abort()
	t2.Abort()
	if n := s.ActiveTxns(); n != 0 {
		t.Fatalf("ActiveTxns after finish = %d, want 0", n)
	}
}

// TestConcurrentCounterSerializability hammers a single counter from many
// goroutines with retry loops and checks that the final value equals the
// number of successful increments: the classic lost-update litmus test.
func TestConcurrentCounterSerializability(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "counter", 0)

	const (
		goroutines = 8
		increments = 50
	)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seqs uint64
	)
	nextID := func() TxnID {
		mu.Lock()
		defer mu.Unlock()
		seqs++
		return txnID(seqs)
	}

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					tx := s.Begin(false)
					v, err := tx.Read("counter")
					if err != nil {
						t.Error(err)
						tx.Abort()
						return
					}
					_ = tx.Write("counter", v.(int)+1)
					if err := tx.Commit(nextID()); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	tx := s.Begin(true)
	defer tx.Abort()
	if got := mustRead(t, tx, "counter"); got != goroutines*increments {
		t.Fatalf("counter = %v, want %d", got, goroutines*increments)
	}
}

// TestConcurrentDisjointWritersNoConflicts checks that transactions touching
// disjoint boxes never abort.
func TestConcurrentDisjointWritersNoConflicts(t *testing.T) {
	s := NewStore()
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		mustCreate(t, s, fmt.Sprintf("slot:%d", g), 0)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			box := fmt.Sprintf("slot:%d", g)
			for i := 0; i < 100; i++ {
				tx := s.Begin(false)
				v, err := tx.Read(box)
				if err != nil {
					errs <- err
					tx.Abort()
					return
				}
				_ = tx.Write(box, v.(int)+1)
				if err := tx.Commit(TxnID{Replica: 1, Seq: uint64(g*1000 + i)}); err != nil {
					errs <- fmt.Errorf("disjoint writer aborted: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentGC runs GC concurrently with readers and writers to shake
// out races in version-chain truncation.
func TestConcurrentGC(t *testing.T) {
	s := NewStore()
	mustCreate(t, s, "x", 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.ApplyWriteSet(txnID(uint64(i+1)), WriteSet{{Box: "x", Value: i}})
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := s.Begin(true)
			_, _ = tx.Read("x")
			tx.Abort()
			s.GC()
		}
	}()

	for i := 0; i < 1000; i++ {
		tx := s.Begin(true)
		if _, err := tx.Read("x"); err != nil {
			t.Errorf("reader: %v", err)
		}
		tx.Abort()
	}
	close(stop)
	wg.Wait()
}
