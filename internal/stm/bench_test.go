package stm

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the local STM substrate: the costs that bound every
// replicated transaction's local phase.

func BenchmarkRead(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 42); err != nil {
		b.Fatal(err)
	}
	tx := s.Begin(true)
	defer tx.Abort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadTracked(b *testing.B) {
	s := NewStore()
	const boxes = 1024
	for i := 0; i < boxes; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("b%04d", i), i); err != nil {
			b.Fatal(err)
		}
	}
	ids := make([]string, boxes)
	for i := range ids {
		ids[i] = fmt.Sprintf("b%04d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin(false)
		for _, id := range ids {
			if _, err := tx.Read(id); err != nil {
				b.Fatal(err)
			}
		}
		tx.Abort()
	}
	b.ReportMetric(float64(boxes), "reads/txn")
}

func BenchmarkCommitReadModifyWrite(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin(false)
		v, err := tx.Read("x")
		if err != nil {
			b.Fatal(err)
		}
		_ = tx.Write("x", v.(int)+1)
		if err := tx.Commit(TxnID{Replica: 1, Seq: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyWriteSet(b *testing.B) {
	s := NewStore()
	ws := make(WriteSet, 16)
	for i := range ws {
		id := fmt.Sprintf("w%02d", i)
		if _, err := s.CreateBox(id, 0); err != nil {
			b.Fatal(err)
		}
		ws[i] = WriteEntry{Box: id, Value: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyWriteSet(TxnID{Replica: 2, Seq: uint64(i + 1)}, ws)
	}
	b.ReportMetric(16, "boxes/ws")
}

func BenchmarkValidate(b *testing.B) {
	s := NewStore()
	const boxes = 256
	rs := make(ReadSet, boxes)
	for i := 0; i < boxes; i++ {
		id := fmt.Sprintf("v%03d", i)
		if _, err := s.CreateBox(id, 0); err != nil {
			b.Fatal(err)
		}
		rs[i] = ReadEntry{Box: id}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Validate(0, rs) {
			b.Fatal("unexpected invalidation")
		}
	}
	b.ReportMetric(boxes, "reads/validate")
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := NewStore()
	for i := 0; i < 4096; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("s%04d", i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		dst := NewStore()
		dst.Restore(snap)
	}
	b.ReportMetric(4096, "boxes")
}

func BenchmarkGC(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 64; j++ {
			s.ApplyWriteSet(TxnID{Replica: 1, Seq: uint64(i*64 + j + 1)}, WriteSet{{Box: "x", Value: j}})
		}
		b.StartTimer()
		s.GC()
	}
}
