package stm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/alcstm/alc/internal/transport"
)

// Microbenchmarks for the local STM substrate: the costs that bound every
// replicated transaction's local phase.

func BenchmarkRead(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 42); err != nil {
		b.Fatal(err)
	}
	tx := s.Begin(true)
	defer tx.Abort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadTracked(b *testing.B) {
	s := NewStore()
	const boxes = 1024
	for i := 0; i < boxes; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("b%04d", i), i); err != nil {
			b.Fatal(err)
		}
	}
	ids := make([]string, boxes)
	for i := range ids {
		ids[i] = fmt.Sprintf("b%04d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin(false)
		for _, id := range ids {
			if _, err := tx.Read(id); err != nil {
				b.Fatal(err)
			}
		}
		tx.Abort()
	}
	b.ReportMetric(float64(boxes), "reads/txn")
}

func BenchmarkCommitReadModifyWrite(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin(false)
		v, err := tx.Read("x")
		if err != nil {
			b.Fatal(err)
		}
		_ = tx.Write("x", v.(int)+1)
		if err := tx.Commit(TxnID{Replica: 1, Seq: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyWriteSet(b *testing.B) {
	s := NewStore()
	ws := make(WriteSet, 16)
	for i := range ws {
		id := fmt.Sprintf("w%02d", i)
		if _, err := s.CreateBox(id, 0); err != nil {
			b.Fatal(err)
		}
		ws[i] = WriteEntry{Box: id, Value: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyWriteSet(TxnID{Replica: 2, Seq: uint64(i + 1)}, ws)
	}
	b.ReportMetric(16, "boxes/ws")
}

func BenchmarkValidate(b *testing.B) {
	s := NewStore()
	const boxes = 256
	rs := make(ReadSet, boxes)
	for i := 0; i < boxes; i++ {
		id := fmt.Sprintf("v%03d", i)
		if _, err := s.CreateBox(id, 0); err != nil {
			b.Fatal(err)
		}
		rs[i] = ReadEntry{Box: id}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Validate(0, rs) {
			b.Fatal("unexpected invalidation")
		}
	}
	b.ReportMetric(boxes, "reads/validate")
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := NewStore()
	for i := 0; i < 4096; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("s%04d", i), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		dst := NewStore()
		dst.Restore(snap)
	}
	b.ReportMetric(4096, "boxes")
}

// BenchmarkStoreCommitDisjoint measures the store's commit scalability in
// the regime the ALC fast path produces: many committers, disjoint
// write-sets. Each parallel worker read-modify-writes its own private box, so
// no transaction ever conflicts; with a fine-grained commit pipeline the
// throughput should scale with GOMAXPROCS (sweep with -cpu=1,2,4,8).
func BenchmarkStoreCommitDisjoint(b *testing.B) {
	s := NewStore()
	const maxWorkers = 128
	for i := 0; i < maxWorkers; i++ {
		if _, err := s.CreateBox(fmt.Sprintf("d%03d", i), 0); err != nil {
			b.Fatal(err)
		}
	}
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1) - 1
		box := fmt.Sprintf("d%03d", w%maxWorkers)
		seq := uint64(0)
		for pb.Next() {
			tx := s.Begin(false)
			v, err := tx.Read(box)
			if err != nil {
				b.Fatal(err)
			}
			_ = tx.Write(box, v.(int)+1)
			seq++
			if err := tx.Commit(TxnID{Replica: transport.ID(1 + w), Seq: seq}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreCommitContended is the guard-rail companion: every worker
// read-modify-writes the SAME box, so all commits conflict and serialize on
// one lock stripe. Conflicted attempts retry; the metric of interest is that
// per-commit cost does not regress versus the global-commit-lock store.
func BenchmarkStoreCommitContended(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("hot", 0); err != nil {
		b.Fatal(err)
	}
	var worker, retries atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		seq := uint64(0)
		for pb.Next() {
			for {
				tx := s.Begin(false)
				v, err := tx.Read("hot")
				if err != nil {
					b.Fatal(err)
				}
				_ = tx.Write("hot", v.(int)+1)
				seq++
				err = tx.Commit(TxnID{Replica: transport.ID(w), Seq: seq})
				if err == nil {
					break
				}
				if !errors.Is(err, ErrConflict) {
					b.Fatal(err)
				}
				retries.Add(1)
			}
		}
	})
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(retries.Load())/float64(b.N), "retries/commit")
	}
}

// BenchmarkStoreApplyDisjointBatches measures the remote-apply path under
// parallelism: concurrent ApplyWriteSets calls over disjoint key ranges, the
// store-side shape of PR1's parallel apply stage.
func BenchmarkStoreApplyDisjointBatches(b *testing.B) {
	s := NewStore()
	const perBatch = 8
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		batch := make([]TxnWriteSet, perBatch)
		seq := uint64(0)
		for pb.Next() {
			for i := range batch {
				seq++
				batch[i] = TxnWriteSet{
					Writer: TxnID{Replica: transport.ID(w), Seq: seq},
					WS:     WriteSet{{Box: fmt.Sprintf("a%03d-%d", w, i), Value: int(seq)}},
				}
			}
			s.ApplyWriteSets(batch)
		}
	})
	b.ReportMetric(perBatch, "ws/batch")
}

func BenchmarkGC(b *testing.B) {
	s := NewStore()
	if _, err := s.CreateBox("x", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 64; j++ {
			s.ApplyWriteSet(TxnID{Replica: 1, Seq: uint64(i*64 + j + 1)}, WriteSet{{Box: "x", Value: j}})
		}
		b.StartTimer()
		s.GC()
	}
}
