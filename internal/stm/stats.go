package stm

// Stats is a point-in-time snapshot of the store's commit-pipeline counters.
// All counters are cumulative since store creation; gauges (Boxes,
// ActiveTxns) are instantaneous.
type Stats struct {
	// Applied counts committed write-sets: local commits (ValidateAndApply)
	// plus remotely applied write-sets (ApplyWriteSet/ApplyWriteSets
	// entries).
	Applied int64
	// StripeContention counts commit-stripe lock acquisitions that found the
	// stripe already held and had to block. Zero under perfectly disjoint
	// write-sets; rises with conflict-class overlap or stripe hash
	// collisions.
	StripeContention int64
	// ClockWaits counts commits whose first clock-publish CAS failed, i.e.
	// that finished installing before an earlier-ticketed commit published.
	ClockWaits int64
	// GCRuns and GCPruned count GC invocations and the total versions they
	// discarded.
	GCRuns   int64
	GCPruned int64
	// Boxes is the number of boxes in the store; ActiveTxns the number of
	// in-flight transactions.
	Boxes      int
	ActiveTxns int
}

// Stats returns the store's current counters. The reads are individually
// atomic but not mutually: the snapshot is approximate under concurrent
// commits, which is fine for its monitoring purpose.
func (s *Store) Stats() Stats {
	return Stats{
		Applied:          s.applied.Load(),
		StripeContention: s.stripeContention.Load(),
		ClockWaits:       s.clockWaits.Load(),
		GCRuns:           s.gcRuns.Load(),
		GCPruned:         s.gcPruned.Load(),
		Boxes:            s.NumBoxes(),
		ActiveTxns:       s.ActiveTxns(),
	}
}
