package bloom

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/alcstm/alc/internal/randseed"
)

// TestRoundTripFPRateProperty is the property the CERT write-set broadcast
// relies on: after a filter crosses the wire (Marshal → Unmarshal), (a) every
// member is still reported present (no false negatives, ever — a false
// negative would certify a genuinely conflicting transaction), and (b) the
// observed false-positive rate on the DECODED filter stays near the
// configured target (false positives only cost spurious aborts, but a
// decode that inflates them would silently degrade D2STM's throughput).
// Exercised across a spread of set sizes and target rates with seeded keys.
func TestRoundTripFPRateProperty(t *testing.T) {
	root := randseed.Root()
	t.Logf("bloom property seed %d; reproduce with %s=%d go test -run TestRoundTripFPRateProperty ./internal/bloom/",
		root, randseed.EnvVar, root)

	cases := []struct {
		n      int
		target float64
	}{
		{10, 0.01},
		{100, 0.01},
		{1000, 0.01},
		{1000, 0.001},
		{5000, 0.05},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n=%d_p=%g", tc.n, tc.target), func(t *testing.T) {
			rng := rand.New(rand.NewSource(
				randseed.Derive(root, fmt.Sprintf("bloom-roundtrip-%d", ci))))
			f := NewWithFPRate(tc.n, tc.target)
			members := make([]string, tc.n)
			for i := range members {
				members[i] = fmt.Sprintf("box:%d:%d", rng.Int63(), i)
			}
			f.AddAll(members)

			decoded, err := Unmarshal(f.Marshal())
			if err != nil {
				t.Fatalf("round-trip: %v", err)
			}
			if decoded.Bits() != f.Bits() || decoded.K() != f.K() || decoded.Len() != f.Len() {
				t.Fatalf("round-trip changed parameters: m %d→%d, k %d→%d, n %d→%d",
					f.Bits(), decoded.Bits(), f.K(), decoded.K(), f.Len(), decoded.Len())
			}

			// (a) no false negatives after decode.
			for _, m := range members {
				if !decoded.Contains(m) {
					t.Fatalf("false negative after round-trip: %q", m)
				}
			}

			// (b) FP rate near target after decode. 4x headroom absorbs
			// integer rounding of m and k plus probe-sampling noise at the
			// small probe counts the cheap cases afford.
			const probes = 20000
			fp := 0
			for i := 0; i < probes; i++ {
				if decoded.Contains(fmt.Sprintf("probe:%d:%d", rng.Int63(), i)) {
					fp++
				}
			}
			rate := float64(fp) / probes
			if rate > tc.target*4 {
				t.Fatalf("decoded filter FP rate %.5f exceeds 4x target %.5f", rate, tc.target)
			}
			// The decoded filter must agree with the original bit-for-bit on
			// behavior, not just on rate: re-probe a sample through both.
			for i := 0; i < 2000; i++ {
				s := fmt.Sprintf("agree:%d", rng.Int63())
				if f.Contains(s) != decoded.Contains(s) {
					t.Fatalf("original and decoded filters disagree on %q", s)
				}
			}
		})
	}
}
