// Package bloom implements the Bloom filter that the CERT baseline (D2STM,
// Couceiro et al. 2009) uses to encode transaction read-sets before atomic
// broadcast. Encoding the read-set as a Bloom filter shrinks the broadcast
// payload at the price of a small, tunable probability of spurious aborts
// (false positives during certification).
//
// The filter uses the standard double-hashing scheme (Kirsch & Mitzenmacher):
// k index functions derived from two 64-bit FNV-1a halves, so membership
// tests cost two hash evaluations regardless of k.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter over strings. The zero value is not
// usable; construct with New or NewWithFPRate.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      uint32 // number of hash functions
	nAdded int
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64. k and m are clamped to at least 1.
func New(m uint64, k uint32) *Filter {
	if m == 0 {
		m = 64
	}
	if k == 0 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithFPRate creates a filter sized for the expected number of entries n
// and target false-positive probability p, using the optimal
// m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2).
func NewWithFPRate(n int, p float64) *Filter {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// hashes returns the two base hashes for the double-hashing scheme.
func hashes(s string) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	h1 := h.Sum64()
	// Derive a second independent hash by re-hashing with a salt byte.
	h.Reset()
	_, _ = h.Write([]byte{0xA5})
	_, _ = h.Write([]byte(s))
	h2 := h.Sum64() | 1 // odd so the stride visits all positions
	return h1, h2
}

// Add inserts s into the filter.
func (f *Filter) Add(s string) {
	h1, h2 := hashes(s)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.nAdded++
}

// AddAll inserts every string in the slice.
func (f *Filter) AddAll(ss []string) {
	for _, s := range ss {
		f.Add(s)
	}
}

// Contains reports whether s may be in the set. False positives are possible;
// false negatives are not.
func (f *Filter) Contains(s string) bool {
	h1, h2 := hashes(s)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of Add calls.
func (f *Filter) Len() int { return f.nAdded }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// SizeBytes returns the wire size of the filter's bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFPRate estimates the current false-positive probability given the
// number of added entries: (1 - e^(-k·n/m))^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.nAdded == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.nAdded) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Marshal serializes the filter into a compact byte payload.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 16+len(f.bits)*8)
	putU64(out[0:], f.m)
	putU64(out[8:], uint64(f.k)<<32|uint64(uint32(f.nAdded)))
	for i, w := range f.bits {
		putU64(out[16+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("bloom: short payload (%d bytes)", len(data))
	}
	m := getU64(data[0:])
	meta := getU64(data[8:])
	k := uint32(meta >> 32)
	n := int(uint32(meta))
	words := (m + 63) / 64
	if uint64(len(data)-16) != words*8 {
		return nil, fmt.Errorf("bloom: payload size %d does not match m=%d", len(data), m)
	}
	f := &Filter{bits: make([]uint64, words), m: words * 64, k: k, nAdded: n}
	for i := range f.bits {
		f.bits[i] = getU64(data[16+i*8:])
	}
	return f, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
