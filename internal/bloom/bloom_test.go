package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithFPRate(100, 0.01)
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 100; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFPRateNearTarget(t *testing.T) {
	const n, target = 1000, 0.01
	f := NewWithFPRate(n, target)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}

	falsePositives := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("non-member-%d", i)) {
			falsePositives++
		}
	}
	rate := float64(falsePositives) / probes
	if rate > target*3 {
		t.Fatalf("observed FP rate %.4f, want <= %.4f", rate, target*3)
	}
}

func TestEstimatedFPRateMonotone(t *testing.T) {
	f := New(1024, 4)
	if got := f.EstimatedFPRate(); got != 0 {
		t.Fatalf("empty filter FP estimate = %v, want 0", got)
	}
	prev := 0.0
	for i := 0; i < 200; i++ {
		f.Add(fmt.Sprintf("x%d", i))
		est := f.EstimatedFPRate()
		if est < prev {
			t.Fatalf("FP estimate decreased: %v -> %v after %d adds", prev, est, i+1)
		}
		prev = est
	}
}

func TestSmallAndDegenerateParameters(t *testing.T) {
	tests := []struct {
		name string
		f    *Filter
	}{
		{"zero m", New(0, 3)},
		{"zero k", New(128, 0)},
		{"fp defaults", NewWithFPRate(0, 2.0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.f.Add("a")
			if !tt.f.Contains("a") {
				t.Fatal("false negative on degenerate filter")
			}
			if tt.f.Bits() == 0 || tt.f.K() == 0 {
				t.Fatalf("Bits=%d K=%d, want both nonzero", tt.f.Bits(), tt.f.K())
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithFPRate(50, 0.02)
	keys := []string{"alpha", "beta", "gamma", "delta"}
	f.AddAll(keys)

	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Len() != f.Len() {
		t.Fatalf("metadata mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			g.Bits(), g.K(), g.Len(), f.Bits(), f.K(), f.Len())
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatalf("unmarshaled filter missing %q", k)
		}
	}
}

func TestUnmarshalRejectsBadPayloads(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal(make([]byte, 17)); err == nil {
		t.Fatal("Unmarshal(odd size) succeeded")
	}
}

// Property: anything added is contained (no false negatives), for arbitrary
// strings and filter shapes.
func TestQuickMembership(t *testing.T) {
	f := func(keys []string, mRaw uint16, kRaw uint8) bool {
		fl := New(uint64(mRaw), uint32(kRaw%8))
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal preserves membership answers for arbitrary
// probe sets.
func TestQuickMarshalFidelity(t *testing.T) {
	f := func(members, probes []string) bool {
		fl := NewWithFPRate(len(members)+1, 0.05)
		fl.AddAll(members)
		g, err := Unmarshal(fl.Marshal())
		if err != nil {
			return false
		}
		for _, p := range probes {
			if fl.Contains(p) != g.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
