package alc_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	alc "github.com/alcstm/alc"
)

func newTestCluster(t *testing.T, cfg alc.Config) *alc.Cluster {
	t.Helper()
	if cfg.NetworkLatency == 0 {
		cfg.NetworkLatency = 200 * time.Microsecond
	}
	c, err := alc.NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := alc.NewCluster(alc.Config{}); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestPublicAPITransferAndAudit(t *testing.T) {
	c := newTestCluster(t, alc.Config{Replicas: 3})
	if err := c.Seed(map[string]alc.Value{"a": 100, "b": 0}); err != nil {
		t.Fatal(err)
	}

	err := c.Replica(0).Atomic(func(tx *alc.Tx) error {
		a, err := tx.ReadInt("a")
		if err != nil {
			return err
		}
		b, err := tx.ReadInt("b")
		if err != nil {
			return err
		}
		if err := tx.Write("a", a-40); err != nil {
			return err
		}
		return tx.Write("b", b+40)
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < c.Size(); i++ {
		var a, b int
		err := c.Replica(i).AtomicRO(func(tx *alc.Tx) error {
			var err error
			if a, err = tx.ReadInt("a"); err != nil {
				return err
			}
			b, err = tx.ReadInt("b")
			return err
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if a != 60 || b != 40 {
			t.Fatalf("replica %d sees a=%d b=%d", i, a, b)
		}
	}
}

func TestPublicAPIConcurrentCounter(t *testing.T) {
	for _, proto := range []alc.Protocol{alc.ALC, alc.CERT} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newTestCluster(t, alc.Config{Replicas: 3, Protocol: proto})
			if err := c.Seed(map[string]alc.Value{"n": 0}); err != nil {
				t.Fatal(err)
			}
			const perReplica = 10
			var wg sync.WaitGroup
			for i := 0; i < c.Size(); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 0; j < perReplica; j++ {
						err := c.Replica(i).Atomic(func(tx *alc.Tx) error {
							n, err := tx.ReadInt("n")
							if err != nil {
								return err
							}
							return tx.Write("n", n+1)
						})
						if err != nil {
							t.Errorf("replica %d: %v", i, err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			if err := c.WaitConverged(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			var n int
			if err := c.Replica(0).AtomicRO(func(tx *alc.Tx) error {
				var err error
				n, err = tx.ReadInt("n")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if n != perReplica*3 {
				t.Fatalf("n = %d, want %d", n, perReplica*3)
			}
		})
	}
}

func TestReadErrors(t *testing.T) {
	c := newTestCluster(t, alc.Config{Replicas: 2})
	if err := c.Seed(map[string]alc.Value{"s": "text"}); err != nil {
		t.Fatal(err)
	}
	err := c.Replica(0).AtomicRO(func(tx *alc.Tx) error {
		if _, err := tx.Read("missing"); !errors.Is(err, alc.ErrNoSuchBox) {
			t.Errorf("Read missing = %v, want ErrNoSuchBox", err)
		}
		if _, err := tx.ReadInt("s"); err == nil {
			t.Error("ReadInt on a string box succeeded")
		} else {
			var te *alc.TypeError
			if !errors.As(err, &te) || te.Box != "s" {
				t.Errorf("ReadInt error = %v, want TypeError{Box: s}", err)
			}
		}
		if err := tx.Write("s", "nope"); !errors.Is(err, alc.ErrReadOnly) {
			t.Errorf("Write in AtomicRO = %v, want ErrReadOnly", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxRetriesSurfaces(t *testing.T) {
	// MaxRetries=0 means unlimited; a positive budget must surface when a
	// transaction keeps conflicting. Force conflicts with a fn that always
	// reads a box being hammered by another replica.
	c := newTestCluster(t, alc.Config{Replicas: 2, MaxRetries: 100})
	if err := c.Seed(map[string]alc.Value{"hot": 0}); err != nil {
		t.Fatal(err)
	}
	// Sanity: an uncontended transaction commits fine within the budget.
	if err := c.Replica(0).Atomic(func(tx *alc.Tx) error {
		n, err := tx.ReadInt("hot")
		if err != nil {
			return err
		}
		return tx.Write("hot", n+1)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndLeaseVisibility(t *testing.T) {
	c := newTestCluster(t, alc.Config{Replicas: 2})
	if err := c.Seed(map[string]alc.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	inc := func(tx *alc.Tx) error {
		n, err := tx.ReadInt("x")
		if err != nil {
			return err
		}
		return tx.Write("x", n+1)
	}
	for i := 0; i < 5; i++ {
		if err := c.Replica(0).Atomic(inc); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Replica(0).Stats()
	if s.Commits != 5 {
		t.Fatalf("Commits = %d, want 5", s.Commits)
	}
	if s.LeaseRequests != 1 || s.LeaseReuses != 4 {
		t.Fatalf("lease stats = %d requests / %d reuses, want 1/4", s.LeaseRequests, s.LeaseReuses)
	}
	if !c.Replica(0).HoldsLease("x") {
		t.Fatal("replica 0 should retain the lease on x")
	}
	if c.Replica(1).HoldsLease("x") {
		t.Fatal("replica 1 should not hold the lease on x")
	}
	if s.CommitLatency.Count() != 5 {
		t.Fatalf("latency samples = %d, want 5", s.CommitLatency.Count())
	}
	if got := s.AbortRate(); got != 0 {
		t.Fatalf("AbortRate = %v, want 0", got)
	}
}

func TestGCThroughPublicAPI(t *testing.T) {
	c := newTestCluster(t, alc.Config{Replicas: 2})
	if err := c.Seed(map[string]alc.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	inc := func(tx *alc.Tx) error {
		n, err := tx.ReadInt("x")
		if err != nil {
			return err
		}
		return tx.Write("x", n+1)
	}
	for i := 0; i < 20; i++ {
		if err := c.Replica(0).Atomic(inc); err != nil {
			t.Fatal(err)
		}
	}
	if pruned := c.Replica(0).GC(); pruned == 0 {
		t.Fatal("GC pruned nothing after 20 versions")
	}
}

func TestCrashRestartThroughPublicAPI(t *testing.T) {
	c := newTestCluster(t, alc.Config{Replicas: 3})
	if err := c.Seed(map[string]alc.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	inc := func(tx *alc.Tx) error {
		n, err := tx.ReadInt("x")
		if err != nil {
			return err
		}
		return tx.Write("x", n+1)
	}
	if err := c.Replica(0).Atomic(inc); err != nil {
		t.Fatal(err)
	}

	c.Crash(2)
	if c.Replica(2).Alive() {
		t.Fatal("crashed replica reports alive")
	}
	if err := c.Replica(2).Atomic(inc); !errors.Is(err, alc.ErrStopped) {
		t.Fatalf("Atomic on crashed replica = %v, want ErrStopped", err)
	}

	// Survivors continue; then the crashed replica rejoins.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Replica(0).Atomic(inc); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never recovered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Replica(2).WaitForView(3, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := c.Replica(2).AtomicRO(func(tx *alc.Tx) error {
		var err error
		n, err = tx.ReadInt("x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rejoined replica sees x=%d, want 2", n)
	}
}
