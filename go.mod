module github.com/alcstm/alc

go 1.24
