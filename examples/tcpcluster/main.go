// TCP cluster: the same replicated STM over real sockets. Three replicas run
// in this process but communicate exclusively through TCP on localhost — the
// exact stack cmd/alc-node deploys across machines (gob wire encoding,
// reconnecting links, the full GCS on top).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/alcstm/alc/internal/core"
	"github.com/alcstm/alc/internal/gcs"
	"github.com/alcstm/alc/internal/lease"
	"github.com/alcstm/alc/internal/stm"
	"github.com/alcstm/alc/internal/tcpnet"
	"github.com/alcstm/alc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Register everything that crosses the wire.
	gcs.RegisterWire()
	core.RegisterWire()
	core.RegisterValue(0) // int values

	// Bind three listeners to learn free ports, then restart with the full
	// address map (as a deployment would configure statically).
	ids := []transport.ID{0, 1, 2}
	addrs := make(map[transport.ID]string, len(ids))
	for _, id := range ids {
		tmp, err := tcpnet.New(tcpnet.Config{
			Self:  id,
			Addrs: map[transport.ID]string{id: "127.0.0.1:0"},
		})
		if err != nil {
			return err
		}
		addrs[id] = tmp.Addr()
		_ = tmp.Close()
	}
	fmt.Printf("replica addresses: %v\n", addrs)

	var replicas []*core.Replica
	for _, id := range ids {
		tr, err := tcpnet.New(tcpnet.Config{Self: id, Addrs: addrs})
		if err != nil {
			return err
		}
		r, err := core.NewReplica(tr, core.Config{
			Protocol: core.ProtocolALC,
			Lease:    lease.Config{OptimisticFree: true},
		}, gcs.Config{Members: ids})
		if err != nil {
			return err
		}
		if err := r.Seed(map[string]stm.Value{"hits": 0}); err != nil {
			return err
		}
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			_ = r.Close()
		}
	}()

	for _, r := range replicas {
		if err := r.WaitForView(len(ids), 15*time.Second); err != nil {
			return err
		}
	}
	fmt.Println("view installed on all replicas (over TCP)")

	// Concurrent increments from every replica.
	const perReplica = 10
	var wg sync.WaitGroup
	for i, r := range replicas {
		wg.Add(1)
		go func(i int, r *core.Replica) {
			defer wg.Done()
			for j := 0; j < perReplica; j++ {
				err := r.Atomic(func(tx *stm.Txn) error {
					v, err := tx.Read("hits")
					if err != nil {
						return err
					}
					return tx.Write("hits", v.(int)+1)
				})
				if err != nil {
					log.Printf("replica %d: %v", i, err)
					return
				}
			}
		}(i, r)
	}
	wg.Wait()

	// Wait for convergence, then read from each replica.
	deadline := time.Now().Add(10 * time.Second)
	for {
		vals := make([]int, len(replicas))
		for i, r := range replicas {
			_ = r.AtomicRO(func(tx *stm.Txn) error {
				v, err := tx.Read("hits")
				if err == nil {
					vals[i] = v.(int)
				}
				return err
			})
		}
		if vals[0] == perReplica*len(replicas) && vals[0] == vals[1] && vals[1] == vals[2] {
			fmt.Printf("hits = %v on every replica — %d commits serialized over TCP\n",
				vals[0], perReplica*len(replicas))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not converge: %v", vals)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
