// Sorted set: a real linked data structure — a deterministic treap — living
// inside the replicated STM. Every insert/delete is a transaction that
// atomically rewires several nodes (rotations included); replicas operate on
// the same tree concurrently and the replication protocol serializes exactly
// the operations whose access paths overlap.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	alc "github.com/alcstm/alc"
	"github.com/alcstm/alc/internal/sortedset"
)

func main() {
	cluster, err := alc.NewCluster(alc.Config{Replicas: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	set := sortedset.New("demo")
	seed := make(map[string]alc.Value)
	for id, v := range set.Seed() {
		seed[id] = v
	}
	if err := cluster.Seed(seed); err != nil {
		log.Fatal(err)
	}

	// Every replica inserts a disjoint slice of keys, concurrently, into
	// the same tree.
	const perReplica = 20
	var wg sync.WaitGroup
	for i := 0; i < cluster.Size(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			r := cluster.Replica(i)
			for j := 0; j < perReplica; j++ {
				key := i*1000 + rng.Intn(500)
				err := r.Atomic(func(tx *alc.Tx) error {
					_, err := set.Insert(tx, key)
					return err
				})
				if err != nil {
					log.Fatalf("replica %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()

	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Read the whole structure from another replica and verify invariants.
	err = cluster.Replica(2).AtomicRO(func(tx *alc.Tx) error {
		if err := set.CheckInvariants(tx); err != nil {
			return err
		}
		keys, err := set.InOrder(tx)
		if err != nil {
			return err
		}
		n, _ := set.Len(tx)
		mn, _, _ := set.Min(tx)
		mx, _, _ := set.Max(tx)
		fmt.Printf("replicated treap: %d keys, min=%d max=%d\n", n, mn, mx)
		fmt.Printf("first keys: %v ...\n", keys[:min(8, len(keys))])
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	st := cluster.Stats()
	fmt.Printf("%d commits, %d aborts (conflicting tree paths), all structural invariants hold\n",
		st.Commits, st.Aborts)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
