// Failover: the dependability story. A 5-replica cluster runs a workload
// while a replica crashes mid-run (the group reconfigures and the dead
// replica's leases are revoked), a minority partition is ejected (its
// replica keeps serving stale read-only transactions, exactly as §3
// permits), and the crashed replica is restarted and readmitted through a
// state transfer.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	alc "github.com/alcstm/alc"
)

func main() {
	cluster, err := alc.NewCluster(alc.Config{Replicas: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Seed(map[string]alc.Value{"ledger": 0}); err != nil {
		log.Fatal(err)
	}

	step := func(format string, args ...any) { fmt.Printf("==> "+format+"\n", args...) }
	add := func(r *alc.Replica) error {
		return r.Atomic(func(tx *alc.Tx) error {
			v, err := tx.ReadInt("ledger")
			if err != nil {
				return err
			}
			return tx.Write("ledger", v+1)
		})
	}
	ledger := func(r *alc.Replica) int {
		v := -1
		_ = r.AtomicRO(func(tx *alc.Tx) error {
			n, err := tx.ReadInt("ledger")
			v = n
			return err
		})
		return v
	}

	step("5 replicas up; committing from replica 4 (this acquires the lease)")
	for i := 0; i < 5; i++ {
		if err := add(cluster.Replica(4)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("    ledger = %d\n", ledger(cluster.Replica(4)))

	step("crashing replica 4 while it holds the lease")
	cluster.Crash(4)

	step("replica 0 takes over: the view change revokes the dead replica's lease")
	start := time.Now()
	for {
		if err := add(cluster.Replica(0)); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    recovered in %v; ledger = %d\n",
		time.Since(start).Round(time.Millisecond), ledger(cluster.Replica(0)))

	step("partitioning replica 3 away from the majority")
	cluster.Partition([]int{3}, []int{0, 1, 2})
	var ejectErr error
	for {
		ejectErr = add(cluster.Replica(3))
		if errors.Is(ejectErr, alc.ErrEjected) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    replica 3 update rejected: %v\n", ejectErr)
	fmt.Printf("    but its read-only snapshot still serves: ledger = %d (stale)\n",
		ledger(cluster.Replica(3)))

	step("majority keeps committing during the partition")
	for i := 0; i < 3; i++ {
		if err := add(cluster.Replica(1)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("    majority ledger = %d\n", ledger(cluster.Replica(1)))

	step("healing the partition: replica 3 rejoins automatically")
	cluster.Heal()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Replica(3).InPrimary() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !cluster.Replica(3).InPrimary() {
		log.Fatal("replica 3 never rejoined")
	}
	fmt.Printf("    replica 3 back in the primary component\n")

	step("restarting crashed replica 4: state transfer brings it up to date")
	if err := cluster.Restart(4); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Replica(4).WaitForView(5, 20*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    replica 4 rejoined; its ledger = %d\n", ledger(cluster.Replica(4)))

	step("full strength: replica 4 commits again")
	if err := add(cluster.Replica(4)); err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    final ledger on every replica: %d %d %d %d %d\n",
		ledger(cluster.Replica(0)), ledger(cluster.Replica(1)), ledger(cluster.Replica(2)),
		ledger(cluster.Replica(3)), ledger(cluster.Replica(4)))
}
