// Vacation: a STAMP-style travel-reservation system on the replicated STM.
// Replicas concurrently book the cheapest available cars, flights and rooms,
// cancel customers and re-price tables; the conservation invariant (capacity
// = available + reserved) is audited on every replica at the end.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	alc "github.com/alcstm/alc"
	"github.com/alcstm/alc/internal/vacation"
)

func main() {
	var (
		replicas = flag.Int("replicas", 3, "cluster size")
		ops      = flag.Int("ops", 40, "operations per replica")
	)
	flag.Parse()

	db := vacation.New(vacation.Config{Resources: 16, Customers: 24, Seed: 4})
	cluster, err := alc.NewCluster(alc.Config{Replicas: *replicas, PiggybackCertification: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Seed(db.Seed()); err != nil {
		log.Fatal(err)
	}

	kinds := []vacation.ResourceKind{vacation.Car, vacation.Flight, vacation.Room}
	var (
		mu       sync.Mutex
		booked   int
		soldOut  int
		releases int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := cluster.Replica(i)
			rng := rand.New(rand.NewSource(int64(i + 1)))
			for op := 0; op < *ops; op++ {
				cust := rng.Intn(db.Customers())
				switch rng.Intn(8) {
				case 0:
					fn := db.ReleaseAll(cust)
					if err := r.Atomic(func(tx *alc.Tx) error { return fn(tx) }); err != nil {
						log.Fatalf("replica %d release: %v", i, err)
					}
					mu.Lock()
					releases++
					mu.Unlock()
				default:
					kind := kinds[rng.Intn(3)]
					candidates := []int{
						rng.Intn(db.Resources()), rng.Intn(db.Resources()), rng.Intn(db.Resources()),
					}
					var ok bool
					fn := db.MakeReservation(cust, kind, candidates, &ok)
					if err := r.Atomic(func(tx *alc.Tx) error { return fn(tx) }); err != nil {
						log.Fatalf("replica %d reserve: %v", i, err)
					}
					mu.Lock()
					if ok {
						booked++
					} else {
						soldOut++
					}
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *replicas; i++ {
		err := cluster.Replica(i).AtomicRO(func(tx *alc.Tx) error {
			return db.CheckInvariant(tx)
		})
		if err != nil {
			log.Fatalf("replica %d invariant: %v", i, err)
		}
	}
	st := cluster.Stats()
	fmt.Printf("vacation: %d bookings, %d sold-out probes, %d cancellations in %v\n",
		booked, soldOut, releases, elapsed.Round(time.Millisecond))
	fmt.Printf("conservation invariant holds on all %d replicas (%d commits, %.1f%% aborts)\n",
		*replicas, st.Commits, 100*st.AbortRate())
}
