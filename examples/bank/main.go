// Bank: the paper's §5 micro-benchmark as a runnable demo. A cluster of
// replicas concurrently transfers money between accounts in two contention
// regimes, printing live throughput, abort rates and lease behaviour — the
// dynamics behind Figure 3.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	alc "github.com/alcstm/alc"
)

func main() {
	var (
		replicas = flag.Int("replicas", 3, "cluster size")
		conflict = flag.Bool("conflict", false, "high-conflict mode: all replicas hit the same accounts")
		seconds  = flag.Int("seconds", 3, "run duration")
		protocol = flag.String("protocol", "alc", "alc or cert")
	)
	flag.Parse()

	proto := alc.ALC
	if *protocol == "cert" {
		proto = alc.CERT
	}
	cluster, err := alc.NewCluster(alc.Config{
		Replicas:               *replicas,
		Protocol:               proto,
		PiggybackCertification: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// numReplicas·2 accounts, as in the paper.
	const initial = 1000
	accounts := *replicas * 2
	seed := make(map[string]alc.Value, accounts)
	for i := 0; i < accounts; i++ {
		seed[acct(i)] = initial
	}
	if err := cluster.Seed(seed); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bank: %d replicas, %s, %s mode\n", *replicas, proto, mode(*conflict))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := cluster.Replica(i)
			src, dst := acct(2*i), acct(2*i+1)
			if *conflict {
				src, dst = acct(0), acct(1)
			}
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				from, to := src, dst
				if round%2 == 1 {
					from, to = to, from
				}
				err := r.Atomic(func(tx *alc.Tx) error {
					f, err := tx.ReadInt(from)
					if err != nil {
						return err
					}
					t, err := tx.ReadInt(to)
					if err != nil {
						return err
					}
					if err := tx.Write(from, f-1); err != nil {
						return err
					}
					return tx.Write(to, t+1)
				})
				if err != nil {
					log.Printf("replica %d: %v", i, err)
					return
				}
			}
		}(i)
	}

	// Live stats once per second.
	var lastCommits int64
	for s := 0; s < *seconds; s++ {
		time.Sleep(time.Second)
		st := cluster.Stats()
		fmt.Printf("  t=%ds  %6d commits/s  abort %4.1f%%  lease reuse %d, handoffs %d\n",
			s+1, st.Commits-lastCommits, 100*st.AbortRate(), st.LeaseReuses, st.LeaseHandoffs)
		lastCommits = st.Commits
	}
	close(stop)
	wg.Wait()

	// Audit: money is conserved on every replica.
	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *replicas; i++ {
		total := 0
		err := cluster.Replica(i).AtomicRO(func(tx *alc.Tx) error {
			for a := 0; a < accounts; a++ {
				v, err := tx.ReadInt(acct(a))
				if err != nil {
					return err
				}
				total += v
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		if total != accounts*initial {
			log.Fatalf("replica %d: invariant violated: total %d != %d", i, total, accounts*initial)
		}
	}
	fmt.Printf("invariant holds on all %d replicas: total balance %d\n", *replicas, accounts*initial)
}

func acct(i int) string { return fmt.Sprintf("acct:%03d", i) }

func mode(conflict bool) string {
	if conflict {
		return "high-conflict"
	}
	return "no-conflict"
}
