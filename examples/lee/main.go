// Lee: transactional circuit routing on a replicated STM — the paper's §5
// Lee-TM workload (Figure 4) as a runnable demo. Each net is routed inside
// one transaction: the breadth-first expansion reads grid cells, the
// backtrace writes the path; transactions span from a handful of cells to
// thousands, and ALC's retained leases shelter the long ones from being
// repeatedly aborted by the short ones.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	alc "github.com/alcstm/alc"
	"github.com/alcstm/alc/internal/lee"
)

func main() {
	var (
		replicas = flag.Int("replicas", 3, "cluster size")
		size     = flag.Int("grid", 32, "board dimension")
		nets     = flag.Int("nets", 24, "number of nets to route")
		seed     = flag.Int64("seed", 42, "board generator seed")
		protocol = flag.String("protocol", "alc", "alc or cert")
	)
	flag.Parse()

	proto := alc.ALC
	if *protocol == "cert" {
		proto = alc.CERT
	}
	board := lee.Generate(lee.GenConfig{W: *size, H: *size, Nets: *nets, Seed: *seed})

	cluster, err := alc.NewCluster(alc.Config{
		Replicas:               *replicas,
		Protocol:               proto,
		PiggybackCertification: true,
		DeadlockDetection:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Seed(board.Seed()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lee: routing %d nets on a %dx%dx%d board across %d replicas (%s)\n",
		len(board.Nets), board.W, board.H, board.Layers, *replicas, proto)

	var (
		mu      sync.Mutex
		routed  int
		blocked int
		wg      sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < *replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := cluster.Replica(i)
			for j := i; j < len(board.Nets); j += *replicas {
				net := board.Nets[j]
				var res lee.RouteResult
				err := r.Atomic(func(tx *alc.Tx) error {
					return board.RouteTxn(net, &res)(tx)
				})
				mu.Lock()
				switch {
				case err == nil:
					routed++
					fmt.Printf("  replica %d routed net %2d: %3d cells (read %4d)\n",
						i, net.ID, res.Len(), res.CellsRead)
				case errors.Is(err, lee.ErrUnroutable):
					blocked++
					fmt.Printf("  replica %d: net %2d unroutable\n", i, net.ID)
				default:
					mu.Unlock()
					log.Fatalf("replica %d net %d: %v", i, net.ID, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	st := cluster.Stats()
	fmt.Printf("routed %d/%d nets in %v  (aborts %d, abort rate %.1f%%)\n",
		routed, routed+blocked, elapsed.Round(time.Millisecond), st.Aborts, 100*st.AbortRate())
}
