// Quickstart: a 3-replica replicated STM, a money transfer, and a read-only
// audit — the one-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	alc "github.com/alcstm/alc"
)

func main() {
	// Start three replicas connected by the in-process simulated network.
	cluster, err := alc.NewCluster(alc.Config{Replicas: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Seed identical initial state on every replica.
	if err := cluster.Seed(map[string]alc.Value{
		"acct:alice": 100,
		"acct:bob":   0,
	}); err != nil {
		log.Fatal(err)
	}

	// A transaction on replica 0: transfer 30 from alice to bob. The
	// closure re-executes transparently if certification detects a
	// conflict, so it must be side-effect free.
	r0 := cluster.Replica(0)
	err = r0.Atomic(func(tx *alc.Tx) error {
		alice, err := tx.ReadInt("acct:alice")
		if err != nil {
			return err
		}
		bob, err := tx.ReadInt("acct:bob")
		if err != nil {
			return err
		}
		if alice < 30 {
			return fmt.Errorf("insufficient funds: %d", alice)
		}
		if err := tx.Write("acct:alice", alice-30); err != nil {
			return err
		}
		return tx.Write("acct:bob", bob+30)
	})
	if err != nil {
		log.Fatal(err)
	}

	// The write-set propagated to every replica: audit from replica 2 with
	// a read-only transaction (abort-free, wait-free).
	if err := cluster.WaitConverged(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	r2 := cluster.Replica(2)
	err = r2.AtomicRO(func(tx *alc.Tx) error {
		alice, err := tx.ReadInt("acct:alice")
		if err != nil {
			return err
		}
		bob, err := tx.ReadInt("acct:bob")
		if err != nil {
			return err
		}
		fmt.Printf("replica 2 sees alice=%d bob=%d (total %d)\n", alice, bob, alice+bob)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	s := r0.Stats()
	fmt.Printf("replica 0: %d commit(s), %d lease request(s), abort rate %.0f%%\n",
		s.Commits, s.LeaseRequests, 100*s.AbortRate())
}
