// Package alc is a replicated software transactional memory implementing
// Asynchronous Lease Certification (ALC), after Carvalho, Romano and
// Rodrigues, "Asynchronous Lease-Based Replication of Software Transactional
// Memory", Middleware 2010.
//
// A cluster of replicas each hosts a full copy of a multi-version
// transactional heap (versioned boxes, as in JVSTM). Transactions run
// locally against a consistent snapshot with no inter-replica communication
// until commit time; 1-copy serializability is then enforced by one of two
// replication protocols:
//
//   - ALC (the default): the replica establishes an asynchronous lease on
//     the transaction's conflict classes — one optimistic atomic broadcast,
//     skipped entirely while the lease is retained — and disseminates only
//     the write-set with a single uniform reliable broadcast (two
//     communication steps). Transactions aborted by a remote conflict
//     re-execute while the lease is held, so they abort at most once.
//
//   - CERT: the classical AB-based certification baseline (as in D2STM):
//     every commit atomically broadcasts the Bloom-encoded read-set and the
//     write-set, and every replica validates it deterministically in the
//     total order. Simpler, but every commit pays for total ordering and
//     nothing bounds re-executions under contention.
//
// Read-only transactions never abort, never block, and remain available even
// on replicas partitioned away from the primary component (on a possibly
// stale snapshot).
//
// # Quickstart
//
//	cluster, err := alc.NewCluster(alc.Config{Replicas: 3})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	cluster.Seed(map[string]alc.Value{"acct:a": 100, "acct:b": 0})
//
//	r := cluster.Replica(0)
//	err = r.Atomic(func(tx *alc.Tx) error {
//		a, err := tx.ReadInt("acct:a")
//		if err != nil { return err }
//		tx.Write("acct:a", a-10)
//		b, _ := tx.ReadInt("acct:b")
//		tx.Write("acct:b", b+10)
//		return nil
//	})
//
// Values stored in boxes must be treated as immutable: they are shared
// across snapshots and replicas.
package alc

import (
	"errors"
	"time"

	"github.com/alcstm/alc/internal/cluster"
	"github.com/alcstm/alc/internal/core"
	"github.com/alcstm/alc/internal/gcs"
	"github.com/alcstm/alc/internal/lease"
	"github.com/alcstm/alc/internal/memnet"
	"github.com/alcstm/alc/internal/stm"
)

// Value is the content of a box. Values must be immutable.
type Value = stm.Value

// Protocol selects the replication scheme.
type Protocol int

const (
	// ALC is Asynchronous Lease Certification (the paper's contribution).
	ALC Protocol = Protocol(core.ProtocolALC)
	// CERT is the atomic-broadcast certification baseline (D2STM-style).
	CERT Protocol = Protocol(core.ProtocolCert)
)

// String returns the protocol name.
func (p Protocol) String() string { return core.Protocol(p).String() }

// Errors surfaced by the public API (see also the sentinel read errors).
var (
	// ErrEjected reports that the replica is outside the primary component;
	// only read-only transactions are available until it rejoins.
	ErrEjected = core.ErrEjected
	// ErrStopped reports that the replica or cluster has been closed.
	ErrStopped = core.ErrStopped
	// ErrTooManyRetries reports that a transaction exceeded MaxRetries.
	ErrTooManyRetries = core.ErrTooManyRetries
	// ErrNoSuchBox reports a read of a box absent from the snapshot.
	ErrNoSuchBox = stm.ErrNoSuchBox
	// ErrReadOnly reports a write inside a read-only transaction.
	ErrReadOnly = stm.ErrReadOnly
)

// Config parametrizes an in-process cluster (the simulated-network
// deployment used for development, testing and the paper's experiments; see
// cmd/alc-node for the TCP deployment).
type Config struct {
	// Replicas is the cluster size. Required.
	Replicas int
	// Protocol selects ALC (default) or CERT.
	Protocol Protocol
	// ConflictClasses controls lease granularity: the number of conflict
	// classes data items hash into. Zero (default) gives one class per data
	// item, the paper's evaluation setting. Smaller values trade message
	// size for false sharing. Ignored by CERT.
	ConflictClasses int
	// Shards partitions the conflict classes across this many independent
	// lease/broadcast groups, each with its own sequencer and lease manager.
	// Transactions whose data-set spans groups commit through the cross-shard
	// certification path (ALC only; CERT returns an error for them). Zero or
	// one runs the classic single-group protocol.
	Shards int
	// DisableOptimisticFree turns off the §4.5(b) optimization (freeing
	// leases at optimistic delivery). On by default.
	DisableOptimisticFree bool
	// PiggybackCertification enables the §4.5(c) optimization: read/write
	// sets travel on the lease request and commit completes in 3
	// communication steps even on lease misses.
	PiggybackCertification bool
	// DeadlockDetection enables the §4.4 wait-for-graph detector in
	// addition to the always-on piggybacked deadlock avoidance.
	DeadlockDetection bool
	// BloomFPRate sets CERT's read-set Bloom filter false-positive target
	// (D2STM's tunable extra abort rate). Zero sends exact read-sets.
	BloomFPRate float64
	// MaxRetries bounds transaction re-executions; 0 means unlimited.
	MaxRetries int
	// NetworkLatency is the simulated one-way message latency between
	// replicas. Default 500µs.
	NetworkLatency time.Duration
	// NetworkJitter adds uniform extra delay in [0, Jitter).
	NetworkJitter time.Duration
	// Batch tunes ALC's group-commit coalescer and parallel apply stage
	// (batch caps, flush window, worker count). The zero value enables
	// batching with the defaults; set Batch.Disable for one URB message per
	// transaction, applied serially.
	Batch core.BatchConfig
}

// Cluster is an in-process replicated STM deployment.
type Cluster struct {
	inner *cluster.Cluster
	reps  []*Replica
}

// NewCluster starts an in-process cluster and blocks until the initial view
// is installed on every replica.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		return nil, errors.New("alc: Config.Replicas must be positive")
	}
	latency := cfg.NetworkLatency
	if latency == 0 {
		latency = 500 * time.Microsecond
	}
	proto := core.Protocol(cfg.Protocol)
	if cfg.Protocol == 0 {
		proto = core.ProtocolALC
	}
	inner, err := cluster.New(cluster.Config{
		N: cfg.Replicas,
		Core: core.Config{
			Protocol: proto,
			Shards:   cfg.Shards,
			Lease: lease.Config{
				Mapper:            lease.Mapper{NumClasses: cfg.ConflictClasses},
				OptimisticFree:    !cfg.DisableOptimisticFree,
				DeadlockDetection: cfg.DeadlockDetection,
			},
			PiggybackCert: cfg.PiggybackCertification,
			BloomFPRate:   cfg.BloomFPRate,
			MaxRetries:    cfg.MaxRetries,
			Batch:         cfg.Batch,
		},
		Net: memnet.Config{Latency: latency, Jitter: cfg.NetworkJitter},
		GCS: gcs.Config{
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectAfter:      200 * time.Millisecond,
			FlushTimeout:      500 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{inner: inner}
	for i := 0; i < cfg.Replicas; i++ {
		c.reps = append(c.reps, &Replica{c: c, idx: i})
	}
	return c, nil
}

// Seed initializes the same boxes on every replica. Call before running
// transactions.
func (c *Cluster) Seed(values map[string]Value) error {
	for _, r := range c.inner.Replicas() {
		if err := r.Seed(values); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of replica slots.
func (c *Cluster) Size() int { return len(c.reps) }

// Replica returns the handle for replica i.
func (c *Cluster) Replica(i int) *Replica { return c.reps[i] }

// Crash fail-stops replica i (dependability testing).
func (c *Cluster) Crash(i int) { c.inner.Crash(i) }

// Restart rejoins a crashed replica through the group's state transfer.
func (c *Cluster) Restart(i int) error { return c.inner.Restart(i) }

// Partition splits the network into isolated groups of replica indices;
// replicas in a minority group are ejected from the primary component.
func (c *Cluster) Partition(groups ...[]int) { c.inner.Partition(groups...) }

// Heal removes all partitions; ejected replicas rejoin automatically.
func (c *Cluster) Heal() { c.inner.Heal() }

// WaitConverged blocks until all live replicas hold identical store state
// (the cluster must be quiescent).
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	return c.inner.WaitConverged(timeout)
}

// Stats aggregates protocol counters across live replicas.
func (c *Cluster) Stats() Stats { return statsFrom(c.inner.TotalStats()) }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.inner.Close() }

// PreferredReplica returns the replica that should execute transactions over
// the given data items for maximal lease locality (the locality-aware
// load-balancing strategy sketched in the paper's future work, §6): routing
// every transaction on a data set to its deterministic owner keeps the lease
// resident, so commits take the zero-communication reuse path instead of
// rotating the lease. The mapping is rendezvous-hashed over live replicas,
// so it remains stable across crashes and rejoins. Returns nil when no
// replica is alive.
func (c *Cluster) PreferredReplica(items ...string) *Replica {
	rep := c.inner.Preferred(items)
	if rep == nil {
		return nil
	}
	for _, r := range c.reps {
		if int(rep.ID()) == r.idx {
			return r
		}
	}
	return nil
}
