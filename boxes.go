package alc

// Typed box handles: thin, allocation-free wrappers that give frequently
// used value types a safer accessor surface than raw Read/Write with type
// assertions. A handle is just the box name; it carries no state and is
// freely shareable.

// IntBox is a handle on a box holding an int.
type IntBox string

// Get reads the box in tx.
func (b IntBox) Get(tx *Tx) (int, error) { return tx.ReadInt(string(b)) }

// Set writes v to the box in tx.
func (b IntBox) Set(tx *Tx, v int) error { return tx.Write(string(b), v) }

// Add increments the box by delta and returns the new value. It reads the
// current value, so concurrent Adds conflict (and serialize) as expected of
// a counter.
func (b IntBox) Add(tx *Tx, delta int) (int, error) {
	v, err := b.Get(tx)
	if err != nil {
		return 0, err
	}
	v += delta
	return v, b.Set(tx, v)
}

// StringBox is a handle on a box holding a string.
type StringBox string

// Get reads the box in tx.
func (b StringBox) Get(tx *Tx) (string, error) {
	v, err := tx.Read(string(b))
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", &TypeError{Box: string(b), Value: v}
	}
	return s, nil
}

// Set writes v to the box in tx.
func (b StringBox) Set(tx *Tx, v string) error { return tx.Write(string(b), v) }

// BoolBox is a handle on a box holding a bool.
type BoolBox string

// Get reads the box in tx.
func (b BoolBox) Get(tx *Tx) (bool, error) {
	v, err := tx.Read(string(b))
	if err != nil {
		return false, err
	}
	val, ok := v.(bool)
	if !ok {
		return false, &TypeError{Box: string(b), Value: v}
	}
	return val, nil
}

// Set writes v to the box in tx.
func (b BoolBox) Set(tx *Tx, v bool) error { return tx.Write(string(b), v) }

// BytesBox is a handle on a box holding an immutable byte slice. The slice
// must not be mutated after Set (it is shared across snapshots and
// replicas); Get returns the stored slice without copying.
type BytesBox string

// Get reads the box in tx.
func (b BytesBox) Get(tx *Tx) ([]byte, error) {
	v, err := tx.Read(string(b))
	if err != nil {
		return nil, err
	}
	data, ok := v.([]byte)
	if !ok {
		return nil, &TypeError{Box: string(b), Value: v}
	}
	return data, nil
}

// Set writes v to the box in tx. The caller relinquishes ownership of v.
func (b BytesBox) Set(tx *Tx, v []byte) error { return tx.Write(string(b), v) }
