package alc_test

import (
	"fmt"
	"log"
	"time"

	alc "github.com/alcstm/alc"
)

// ExampleNewCluster shows the minimal lifecycle: start a cluster, seed
// state, run a replicated transaction, audit with a read-only one.
func ExampleNewCluster() {
	cluster, err := alc.NewCluster(alc.Config{Replicas: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Seed(map[string]alc.Value{"counter": 0}); err != nil {
		log.Fatal(err)
	}

	if err := cluster.Replica(0).Atomic(func(tx *alc.Tx) error {
		n, err := tx.ReadInt("counter")
		if err != nil {
			return err
		}
		return tx.Write("counter", n+1)
	}); err != nil {
		log.Fatal(err)
	}

	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	_ = cluster.Replica(2).AtomicRO(func(tx *alc.Tx) error {
		n, err := tx.ReadInt("counter")
		if err != nil {
			return err
		}
		fmt.Println("counter:", n)
		return nil
	})
	// Output: counter: 1
}

// ExampleReplica_Atomic demonstrates conflict-transparent retries: the
// closure may run several times, so it must be side-effect free apart from
// its transactional reads and writes.
func ExampleReplica_Atomic() {
	cluster, err := alc.NewCluster(alc.Config{Replicas: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Seed(map[string]alc.Value{"from": 50, "to": 0}); err != nil {
		log.Fatal(err)
	}

	err = cluster.Replica(0).Atomic(func(tx *alc.Tx) error {
		from, err := tx.ReadInt("from")
		if err != nil {
			return err
		}
		if from < 10 {
			return fmt.Errorf("insufficient funds: %d", from)
		}
		to, err := tx.ReadInt("to")
		if err != nil {
			return err
		}
		if err := tx.Write("from", from-10); err != nil {
			return err
		}
		return tx.Write("to", to+10)
	})
	fmt.Println("err:", err)
	// Output: err: <nil>
}
