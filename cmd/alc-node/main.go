// Command alc-node runs one replica of the replicated STM over real TCP, as
// an interactive replicated key-value node. Start one process per replica:
//
//	alc-node -id 0 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002
//	alc-node -id 1 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002
//	alc-node -id 2 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002
//
// A replica that crashed can be restarted with -join to rejoin through the
// group's state transfer.
//
// Replica links speak the binary wire codec; a peer from the retired
// gob-framing release is refused at handshake. -shards splits the conflict
// classes across that many independent lease/broadcast groups (see README
// "Horizontal sharding"; every node must agree). -client opens the wire client
// protocol front door with admission control (-max-inflight, -max-pending);
// drive it with alc-bench -loadgen or the clientsrv package.
//
// Commands on stdin:
//
//	set <key> <int>     replicated write transaction
//	get <key>           local read-only transaction
//	inc <key> [delta]   replicated read-modify-write transaction
//	stats               protocol counters
//	dump                view, store and lease-table introspection
//	quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/alcstm/alc/internal/clientsrv"
	"github.com/alcstm/alc/internal/core"
	"github.com/alcstm/alc/internal/gcs"
	"github.com/alcstm/alc/internal/lease"
	"github.com/alcstm/alc/internal/obs"
	"github.com/alcstm/alc/internal/stm"
	"github.com/alcstm/alc/internal/tcpnet"
	"github.com/alcstm/alc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alc-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id        = flag.Int("id", -1, "this replica's ID")
		peers     = flag.String("peers", "", "comma-separated id=host:port list for every replica")
		protocol  = flag.String("protocol", "alc", "alc or cert")
		shards    = flag.Int("shards", 1, "independent lease/broadcast shard groups (alc only; must match on every node)")
		join      = flag.Bool("join", false, "rejoin a running group via state transfer")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/alc and /debug/pprof on this address (e.g. :8080)")
		dataDir   = flag.String("data-dir", "", "directory for the write-ahead log and store snapshots (empty = no durability)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: always, interval or off")
		fsyncInt  = flag.Duration("fsync-interval", 5*time.Millisecond, "fsync cadence under -fsync=interval")
		snapEvery = flag.Int("snapshot-every", 0, "take a store snapshot and truncate the WAL every N applied write-sets (0 = default 4096, negative = never)")
		client    = flag.String("client", "", "serve the wire client protocol on this address (e.g. :7100; empty = no client port)")
		inflight  = flag.Int("max-inflight", 0, "admission: concurrently executing client requests per connection (0 = default 64)")
		pending   = flag.Int("max-pending", 0, "admission: server-wide executing client requests before shedding with the retryable overloaded status (0 = default 1024)")
	)
	flag.Parse()
	if *id < 0 || *peers == "" {
		return fmt.Errorf("-id and -peers are required")
	}

	addrs, members, err := parsePeers(*peers)
	if err != nil {
		return err
	}

	// Register every type crossing the wire.
	gcs.RegisterWire()
	core.RegisterWire()
	core.RegisterValue(0) // int box values

	tr, err := tcpnet.New(tcpnet.Config{Self: transport.ID(*id), Addrs: addrs})
	if err != nil {
		return err
	}
	defer tr.Close()

	proto := core.ProtocolALC
	if *protocol == "cert" {
		proto = core.ProtocolCert
	}
	replica, err := core.NewReplica(tr, core.Config{
		Protocol: proto,
		Shards:   *shards,
		Lease:    lease.Config{OptimisticFree: true, DeadlockDetection: true},
		Durability: core.DurabilityConfig{
			Dir:           *dataDir,
			Fsync:         *fsync,
			FsyncInterval: *fsyncInt,
			SnapshotEvery: *snapEvery,
		},
	}, gcs.Config{
		Members:    members,
		Joining:    *join,
		AutoRejoin: true,
	})
	if err != nil {
		return err
	}
	defer replica.Close()

	if *dataDir != "" {
		ws := replica.Stats().WAL
		fmt.Printf("durability on: %s (fsync=%s); recovered snapshot=%t, %d WAL records (%d entries) in %v\n",
			*dataDir, *fsync, ws.RecoveredFromSnapshot, ws.ReplayedRecords, ws.ReplayedEntries, ws.ReplayDuration)
	}

	var csrv *clientsrv.Server
	if *client != "" {
		csrv, err = clientsrv.Serve(*client, clientsrv.Config{
			Backend:     clientsrv.ReplicaBackend{R: replica},
			MaxInflight: *inflight,
			MaxPending:  *pending,
		})
		if err != nil {
			return err
		}
		defer csrv.Close()
		fmt.Printf("client protocol on %s\n", csrv.Addr())
	}

	if *httpAddr != "" {
		obs.Default.Register(fmt.Sprintf("node-%d", *id),
			func() *core.Replica { return replica })
		if csrv != nil {
			obs.Default.RegisterAdmission(fmt.Sprintf("node-%d", *id),
				func() *clientsrv.Server { return csrv })
		}
		srv, err := obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s/{metrics,debug/alc,debug/pprof}\n", srv.Addr())
	}

	fmt.Printf("replica %d up (%v, %d peers); waiting for the group...\n", *id, proto, len(members)-1)
	if err := replica.WaitForView(len(members)/2+1, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("view installed: %v\n", replica.GCS().CurrentView())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "stats":
			s := replica.Stats()
			fmt.Printf("commits=%d aborts=%d readonly=%d leaseReqs=%d leaseReuse=%d\n",
				s.Commits, s.Aborts, s.ReadOnly, s.Lease.Requested, s.Lease.Reused)
			if s.WAL.Enabled {
				fmt.Printf("wal: records=%d bytes=%d snapshots=%d retained=%d deltasServed=%d fullsServed=%d\n",
					s.WAL.Records, s.WAL.AppendedBytes, s.WAL.Snapshots,
					s.WAL.RetainedEntries, s.WAL.DeltasServed, s.WAL.FullsServed)
			}
		case "dump":
			fmt.Printf("view: %v  primary: %t\n", replica.GCS().CurrentView(), replica.InPrimary())
			fmt.Printf("store: %d boxes, clock %d, %d active txns\n",
				replica.Store().NumBoxes(), replica.Store().CommitTimestamp(), replica.Store().ActiveTxns())
			fmt.Print(replica.LeaseManager().DumpState())
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			err := replica.AtomicRO(func(tx *stm.Txn) error {
				v, err := tx.Read(fields[1])
				if err != nil {
					return err
				}
				fmt.Printf("%s = %v\n", fields[1], v)
				return nil
			})
			if err != nil {
				fmt.Println("error:", err)
			}
		case "set":
			if len(fields) != 3 {
				fmt.Println("usage: set <key> <int>")
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			err = replica.Atomic(func(tx *stm.Txn) error {
				return tx.Write(fields[1], n)
			})
			report(err)
		case "inc":
			if len(fields) < 2 {
				fmt.Println("usage: inc <key> [delta]")
				continue
			}
			delta := 1
			if len(fields) == 3 {
				if d, err := strconv.Atoi(fields[2]); err == nil {
					delta = d
				}
			}
			err = replica.Atomic(func(tx *stm.Txn) error {
				return applyInc(tx, fields[1], delta)
			})
			report(err)
		default:
			fmt.Println("commands: set get inc stats dump quit")
		}
	}
}

// txRW is the slice of *stm.Txn that applyInc needs (seam for testing the
// error-handling contract without driving a live store into each case).
type txRW interface {
	Read(box string) (stm.Value, error)
	Write(box string, v stm.Value) error
}

// applyInc is the read-modify-write body of the inc command. Only a missing
// box means "start from zero": any other read error (snapshot conflict,
// finished transaction) must propagate so the STM aborts and transparently
// re-executes — swallowing it would commit 0+delta over a value the
// transaction was not entitled to ignore.
func applyInc(tx txRW, key string, delta int) error {
	cur := 0
	v, err := tx.Read(key)
	switch {
	case errors.Is(err, stm.ErrNoSuchBox):
		// box absent: create it at delta
	case err != nil:
		return err
	default:
		n, ok := v.(int)
		if !ok {
			return fmt.Errorf("inc %s: box holds %T, not int", key, v)
		}
		cur = n
	}
	return tx.Write(key, cur+delta)
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}

func parsePeers(s string) (map[transport.ID]string, []transport.ID, error) {
	addrs := make(map[transport.ID]string)
	var members []transport.ID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		addrs[transport.ID(id)] = kv[1]
		members = append(members, transport.ID(id))
	}
	return addrs, members, nil
}
