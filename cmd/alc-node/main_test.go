package main

import (
	"errors"
	"fmt"
	"testing"

	"github.com/alcstm/alc/internal/stm"
)

// fakeTx scripts the Read result and records the Write, standing in for a
// *stm.Txn mid-transaction.
type fakeTx struct {
	readVal  stm.Value
	readErr  error
	wroteKey string
	wroteVal stm.Value
	wrote    bool
}

func (f *fakeTx) Read(string) (stm.Value, error) { return f.readVal, f.readErr }

func (f *fakeTx) Write(box string, v stm.Value) error {
	f.wrote, f.wroteKey, f.wroteVal = true, box, v
	return nil
}

// Regression: inc used to treat EVERY read error as "key absent" and write
// 0+delta — including the conflict errors that must abort the attempt so the
// STM re-executes it. A conflicting read now propagates and writes nothing.
func TestApplyIncPropagatesAbortErrors(t *testing.T) {
	conflict := fmt.Errorf("validate: %w", stm.ErrConflict)
	tx := &fakeTx{readErr: conflict}
	err := applyInc(tx, "k", 5)
	if !errors.Is(err, stm.ErrConflict) {
		t.Fatalf("applyInc returned %v, want the wrapped stm.ErrConflict", err)
	}
	if tx.wrote {
		t.Fatalf("applyInc wrote %v after a conflicting read — the lost-update bug is back", tx.wroteVal)
	}
}

func TestApplyIncTxnDonePropagates(t *testing.T) {
	tx := &fakeTx{readErr: stm.ErrTxnDone}
	if err := applyInc(tx, "k", 1); !errors.Is(err, stm.ErrTxnDone) {
		t.Fatalf("applyInc returned %v, want stm.ErrTxnDone", err)
	}
	if tx.wrote {
		t.Fatal("applyInc wrote after ErrTxnDone")
	}
}

// A genuinely missing box still means "create at delta".
func TestApplyIncMissingBoxStartsAtZero(t *testing.T) {
	tx := &fakeTx{readErr: fmt.Errorf("%w: %q", stm.ErrNoSuchBox, "k")}
	if err := applyInc(tx, "k", 3); err != nil {
		t.Fatalf("applyInc: %v", err)
	}
	if !tx.wrote || tx.wroteKey != "k" || tx.wroteVal != 3 {
		t.Fatalf("wrote %v=%v, want k=3", tx.wroteKey, tx.wroteVal)
	}
}

func TestApplyIncIncrementsExisting(t *testing.T) {
	tx := &fakeTx{readVal: 39}
	if err := applyInc(tx, "k", 3); err != nil {
		t.Fatalf("applyInc: %v", err)
	}
	if tx.wroteVal != 42 {
		t.Fatalf("wrote %v, want 42", tx.wroteVal)
	}
}

func TestApplyIncRejectsNonInt(t *testing.T) {
	tx := &fakeTx{readVal: "not an int"}
	if err := applyInc(tx, "k", 1); err == nil {
		t.Fatal("applyInc accepted a non-int box")
	}
	if tx.wrote {
		t.Fatal("applyInc wrote over a non-int box")
	}
}

// End-to-end on a real store: applyInc against a live transaction both
// creates a missing box and increments an existing one.
func TestApplyIncOnRealStore(t *testing.T) {
	store := stm.NewStore()

	seed := store.Begin(false)
	if err := applyInc(seed, "k", 10); err != nil {
		t.Fatalf("applyInc (create): %v", err)
	}
	if err := seed.Commit(stm.TxnID{Seq: 1}); err != nil {
		t.Fatalf("seed commit: %v", err)
	}

	tx := store.Begin(false)
	if err := applyInc(tx, "k", 5); err != nil {
		t.Fatalf("applyInc (increment): %v", err)
	}
	if err := tx.Commit(stm.TxnID{Seq: 2}); err != nil {
		t.Fatalf("commit: %v", err)
	}

	ro := store.Begin(true)
	defer ro.Finish()
	v, err := ro.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if v != 15 {
		t.Fatalf("k = %v, want 15", v)
	}
}
