// Command alc-benchtable regenerates the bench-trajectory table in
// EXPERIMENTS.md from the BENCH_PR*.json records, so the headline perf
// result of every PR is visible at a glance and a missing or stale row is a
// CI failure, not a doc drift.
//
//	go run ./cmd/alc-benchtable           # rewrite the table in place
//	go run ./cmd/alc-benchtable -check    # exit 1 if the table is stale (CI)
//
// The table lives between the <!-- bench-trajectory:begin/end --> markers;
// everything outside them is left untouched. PRs without a BENCH_PR<n>.json
// record (refactors, test/infra PRs) get an explicit "no bench record" row
// so the numbering gaps stay visible rather than silently compressed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const (
	beginMarker = "<!-- bench-trajectory:begin -->"
	endMarker   = "<!-- bench-trajectory:end -->"
)

type record struct {
	PR       string `json:"pr"`
	Date     string `json:"date"`
	Headline string `json:"headline"`
}

func main() {
	check := flag.Bool("check", false, "verify the table is current; exit nonzero if stale")
	dir := flag.String("dir", ".", "repository root holding BENCH_PR*.json and EXPERIMENTS.md")
	flag.Parse()
	if err := run(*dir, *check); err != nil {
		fmt.Fprintln(os.Stderr, "alc-benchtable:", err)
		os.Exit(1)
	}
}

func run(dir string, check bool) error {
	table, err := buildTable(dir)
	if err != nil {
		return err
	}

	expPath := filepath.Join(dir, "EXPERIMENTS.md")
	doc, err := os.ReadFile(expPath)
	if err != nil {
		return err
	}
	begin := strings.Index(string(doc), beginMarker)
	end := strings.Index(string(doc), endMarker)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: bench-trajectory markers missing or out of order", expPath)
	}
	updated := string(doc[:begin]) + beginMarker + "\n" + table + endMarker + string(doc[end+len(endMarker):])

	if check {
		if updated != string(doc) {
			return fmt.Errorf("EXPERIMENTS.md bench-trajectory table is stale; run: go run ./cmd/alc-benchtable")
		}
		return nil
	}
	if updated == string(doc) {
		return nil
	}
	return os.WriteFile(expPath, []byte(updated), 0o644)
}

var benchFile = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

func buildTable(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	recs := make(map[int]record)
	maxPR := 0
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return "", err
		}
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			return "", fmt.Errorf("%s: %w", e.Name(), err)
		}
		if r.Headline == "" {
			return "", fmt.Errorf("%s: missing \"headline\" field", e.Name())
		}
		recs[n] = r
		if n > maxPR {
			maxPR = n
		}
	}
	if maxPR == 0 {
		return "", fmt.Errorf("no BENCH_PR<n>.json records found in %s", dir)
	}

	var b strings.Builder
	b.WriteString("| PR | Date | Headline result |\n|---|---|---|\n")
	nums := make([]int, 0, maxPR)
	for n := 1; n <= maxPR; n++ {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		r, ok := recs[n]
		if !ok {
			fmt.Fprintf(&b, "| %d | — | no bench record (non-perf PR; see CHANGES.md) |\n", n)
			continue
		}
		fmt.Fprintf(&b, "| %d | %s | %s (record: `BENCH_PR%d.json`) |\n", n, r.Date, escape(r.Headline), n)
	}
	return b.String(), nil
}

// escape keeps a headline from breaking the markdown table.
func escape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
