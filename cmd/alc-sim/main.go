// Command alc-sim replays one deterministic simulation seed with verbose
// tracing. It is the debugging companion to the internal/sim test suite:
// when TestSimSeeds reports a failing seed, this command re-runs exactly
// that schedule — same fault timeline, same workload op streams — and
// prints every failure event, the schedule, and the checker verdict.
//
// Usage:
//
//	alc-sim -seed=123456789           # replay one seed, verbose
//	alc-sim -seed=123456789 -n=20     # replay it 20 times (flaky hunts)
//	alc-sim -seed=123456789 -trace    # also dump the protocol event trace
//
// With -trace, failing runs print the tail of the unified internal/trace
// ring buffer: lease-manager transitions and transaction lifecycle events
// from every replica, interleaved in emission order.
//
// Exit status is 1 if any run fails, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/alcstm/alc/internal/sim"
	"github.com/alcstm/alc/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alc-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 0, "schedule seed to replay (required)")
		n       = flag.Int("n", 1, "number of replays (a failure anywhere fails the command)")
		threads = flag.Int("threads", 0, "load threads per replica (0 = harness default)")
		load    = flag.Duration("load", 0, "load-phase duration (0 = harness default)")
		quiet   = flag.Bool("q", false, "suppress event tracing, print only summaries")
		traceOn = flag.Bool("trace", false, "dump the protocol event trace for failing runs")
		durable = flag.Bool("durable", false, "run with the durability tier: WAL + snapshots, crash-restart recovery from disk")
		shards  = flag.Int("shards", 0, "shard groups per replica (0 = harness default of 1)")
	)
	flag.Parse()
	if *seed == 0 && flag.Lookup("seed").Value.String() == "0" {
		// Seed 0 is a legal schedule seed, but an unset flag is the common
		// mistake; require it explicitly.
		if !flagPassed("seed") {
			flag.Usage()
			return fmt.Errorf("missing -seed")
		}
	}

	failures := 0
	for i := 0; i < *n; i++ {
		cfg := sim.Config{Seed: *seed, Threads: *threads, Load: *load, Durable: *durable, Shards: *shards}
		if !*quiet {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf("  "+format+"\n", args...)
			}
		}
		var tracer *trace.Tracer
		if *traceOn {
			tracer = trace.New(1 << 14)
			cfg.Tracer = tracer
		}
		res := sim.Run(cfg)
		fmt.Printf("run %d/%d: %s\n", i+1, *n, res.Summary())
		if !res.OK() {
			failures++
			if tracer != nil {
				for _, e := range tracer.Events() {
					fmt.Println("  " + e.Format(tracer.Start()))
				}
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d runs failed", failures, *n)
	}
	return nil
}

func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}
