// Command lee-route runs the transactional Lee router on a generated board
// over a replicated cluster and renders the result as ASCII art — a visual
// way to watch the replicated STM do real work.
//
//	lee-route -grid 24 -nets 14 -replicas 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	alc "github.com/alcstm/alc"
	"github.com/alcstm/alc/internal/lee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lee-route:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		replicas = flag.Int("replicas", 3, "cluster size")
		grid     = flag.Int("grid", 24, "board dimension")
		nets     = flag.Int("nets", 14, "net count")
		seed     = flag.Int64("seed", 7, "board seed")
	)
	flag.Parse()

	board := lee.Generate(lee.GenConfig{W: *grid, H: *grid, Nets: *nets, Seed: *seed})

	cluster, err := alc.NewCluster(alc.Config{
		Replicas:               *replicas,
		PiggybackCertification: true,
		DeadlockDetection:      true,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	if err := cluster.Seed(board.Seed()); err != nil {
		return err
	}

	var (
		mu     sync.Mutex
		routed int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *replicas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := cluster.Replica(i)
			for j := i; j < len(board.Nets); j += *replicas {
				net := board.Nets[j]
				var res lee.RouteResult
				err := r.Atomic(func(tx *alc.Tx) error {
					return board.RouteTxn(net, &res)(tx)
				})
				if err == nil {
					mu.Lock()
					routed++
					mu.Unlock()
				} else if !errors.Is(err, lee.ErrUnroutable) {
					fmt.Fprintf(os.Stderr, "net %d: %v\n", net.ID, err)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := cluster.WaitConverged(10 * time.Second); err != nil {
		return err
	}

	// Render layer 0 from replica 0's snapshot.
	if err := render(cluster.Replica(0), board); err != nil {
		return err
	}
	fmt.Printf("routed %d/%d nets across %d replicas in %v\n",
		routed, len(board.Nets), *replicas, elapsed.Round(time.Millisecond))
	return nil
}

func render(r *alc.Replica, board *lee.Board) error {
	glyph := func(v int) byte {
		switch {
		case v == lee.Obstacle:
			return '#'
		case v == lee.Free:
			return '.'
		default:
			return byte('A' + (v-1)%26)
		}
	}
	return r.AtomicRO(func(tx *alc.Tx) error {
		for z := 0; z < board.Layers; z++ {
			fmt.Printf("layer %d:\n", z)
			for y := 0; y < board.H; y++ {
				line := make([]byte, board.W)
				for x := 0; x < board.W; x++ {
					v, err := tx.Read(lee.CellID(z, y, x))
					if err != nil {
						return err
					}
					line[x] = glyph(v.(int))
				}
				fmt.Printf("  %s\n", line)
			}
		}
		return nil
	})
}
