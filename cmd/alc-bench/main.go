// Command alc-bench regenerates the paper's evaluation tables and figures
// (§5) on the simulated cluster, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	alc-bench -experiment fig3a              # Bank, no conflict  (Fig. 3a)
//	alc-bench -experiment fig3b              # Bank, high conflict (Fig. 3b)
//	alc-bench -experiment fig4               # Lee-TM speed-up + aborts (Fig. 4a/4b)
//	alc-bench -experiment latency            # §4.5 commit-latency decomposition
//	alc-bench -experiment ablation-opt       # §4.5 optimization ablation
//	alc-bench -experiment ablation-cc        # conflict-class granularity sweep
//	alc-bench -experiment ablation-bloom     # D2STM Bloom size/abort trade-off
//	alc-bench -experiment ablation-routing   # live affinity routing vs oblivious placement
//	alc-bench -experiment ablation-batch     # group-commit batching + parallel apply
//	alc-bench -experiment netload            # real-TCP end-to-end, binary wire codec
//	alc-bench -experiment all
//
// Scale knobs: -replicas (comma list), -duration per cell, -latency one-way
// network latency, -nets/-grid for Lee.
//
// Load-generator mode drives a live alc-node's -client port over the pooled
// client protocol instead of running a simulation:
//
//	alc-bench -loadgen -target 127.0.0.1:7100 -threads 32 -conns 8 -duration 10s
//
// It reports committed ops/s and how many requests the server's admission
// control shed with the retryable overloaded status.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alcstm/alc/internal/bank"
	"github.com/alcstm/alc/internal/bench"
	"github.com/alcstm/alc/internal/clientsrv"
	"github.com/alcstm/alc/internal/lee"
	"github.com/alcstm/alc/internal/obs"
	"github.com/alcstm/alc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment   = flag.String("experiment", "all", "fig3a|fig3b|fig4|latency|ablation-opt|ablation-cc|ablation-bloom|ablation-locality|ablation-routing|ablation-batch|ablation-shard|netload|all")
		replicaArg   = flag.String("replicas", "2,3,4,5,6,7,8", "comma-separated cluster sizes for the sweeps")
		duration     = flag.Duration("duration", 2*time.Second, "measured duration per throughput cell")
		latCommits   = flag.Int("latency-commits", 300, "commits per latency cell")
		grid         = flag.Int("grid", 64, "Lee board dimension (grid x grid)")
		nets         = flag.Int("nets", 160, "Lee net count")
		workPerRead  = flag.Duration("work-per-read", 100*time.Microsecond, "Lee per-cell expansion cost (transaction length model)")
		abCeiling    = flag.Duration("ab-ceiling", 0, "sequencer pacing per ordered message (0 = calibrated default, negative = native uncapped AB)")
		csvPath      = flag.String("csv", "", "append results in long-format CSV to this file")
		batchThreads = flag.Int("batch-threads", 32, "committer threads per replica for ablation-batch")
		httpAddr     = flag.String("http", "", "serve /metrics, /debug/alc and /debug/pprof on this address while the benchmarks run")

		loadgen  = flag.Bool("loadgen", false, "drive a live alc-node client port instead of running simulations")
		target   = flag.String("target", "", "loadgen: the node's -client address")
		lgConns  = flag.Int("conns", 4, "loadgen: pooled connections")
		lgThread = flag.Int("threads", 16, "loadgen: concurrent request loops")
		lgKeys   = flag.Int("keys", 64, "loadgen: distinct keys incremented round-robin")
	)
	flag.Parse()
	if *loadgen {
		return runLoadgen(*target, *lgConns, *lgThread, *lgKeys, *duration)
	}

	replicas, err := parseInts(*replicaArg)
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		// Benchmark clusters auto-register with obs.Default as c<n>-r<i>, so
		// one server exposes whichever cluster is currently running — handy
		// for watching per-stage latency histograms live during a sweep.
		srv, err := obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s/{metrics,debug/alc,debug/pprof}\n", srv.Addr())
	}
	var csvw *bench.CSVWriter
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		csvw = bench.NewCSVWriter(f)
		defer csvw.Flush() //nolint:errcheck // best-effort on exit
	}

	bankCfg := bench.BankConfig{Duration: *duration, Warmup: 300 * time.Millisecond, ABCeiling: *abCeiling}
	leeCfg := bench.LeeConfig{Board: lee.GenConfig{W: *grid, H: *grid, Nets: *nets, Seed: 42}, WorkPerRead: *workPerRead, ABCeiling: *abCeiling}

	experiments := map[string]func() error{
		"fig3a": func() error {
			rows, err := bench.RunFig3(replicas, bank.NoConflict, bankCfg)
			if err != nil {
				return err
			}
			bench.PrintFig3(os.Stdout, "Figure 3(a) — Bank benchmark, no conflict (throughput, commits/s)", rows)
			if csvw != nil {
				return csvw.WriteFig3("fig3a", rows)
			}
			return nil
		},
		"fig3b": func() error {
			rows, err := bench.RunFig3(replicas, bank.HighConflict, bankCfg)
			if err != nil {
				return err
			}
			bench.PrintFig3(os.Stdout, "Figure 3(b) — Bank benchmark, high conflict (throughput + abort rate)", rows)
			if csvw != nil {
				return csvw.WriteFig3("fig3b", rows)
			}
			return nil
		},
		"fig4": func() error {
			rows, err := bench.RunFig4(replicas, leeCfg)
			if err != nil {
				return err
			}
			bench.PrintFig4(os.Stdout, "Figure 4 — Lee-TM benchmark (a: speed-up ALC vs CERT, b: abort rate)", rows)
			if csvw != nil {
				return csvw.WriteFig4("fig4", rows)
			}
			return nil
		},
		"latency": func() error {
			n := 3
			if len(replicas) > 0 {
				n = replicas[0]
			}
			rows, err := bench.RunLatency(n, *latCommits)
			if err != nil {
				return err
			}
			bench.PrintLatency(os.Stdout,
				fmt.Sprintf("§4.5 — Commit-phase latency by protocol variant (n=%d, one-way latency %v)",
					n, bench.DefaultLatency), rows)
			if csvw != nil {
				return csvw.WriteLatency("latency", rows)
			}
			return nil
		},
		"ablation-opt": func() error {
			n := 3
			if len(replicas) > 0 {
				n = replicas[0]
			}
			rows, err := bench.RunAblationOpt(n, bankCfg)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — §4.5 optimizations on high-conflict bank (n=%d)", n), rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-opt", rows)
			}
			return nil
		},
		"ablation-cc": func() error {
			n := 4
			rows, err := bench.RunAblationCC(n, []int{1, 2, 8, 64, 0}, bankCfg)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — conflict-class granularity on no-conflict bank (n=%d)", n), rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-cc", rows)
			}
			return nil
		},
		"ablation-locality": func() error {
			n := 4
			if len(replicas) > 0 {
				n = replicas[0]
			}
			rows, err := bench.RunAblationLocality(n, *duration)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — §6 locality-aware routing on high-conflict bank (n=%d)", n), rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-locality", rows)
			}
			return nil
		},
		"ablation-routing": func() error {
			n := 4
			if len(replicas) > 0 {
				n = replicas[0]
			}
			rows, err := bench.RunAblationRouting(n, *duration)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — locality-aware routing: live affinity map vs oblivious placement (n=%d, zipfian s=%.1f over %d pairs)",
					n, bench.RoutingSkew, bench.RoutingPairs), rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-routing", rows)
			}
			return nil
		},
		"ablation-batch": func() error {
			const n = 4
			cfg := bankCfg
			cfg.Threads = *batchThreads
			rows, err := bench.RunAblationBatch(n, cfg)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — group-commit batching + parallel apply on sharded bank (n=%d, %d threads/replica)",
					n, *batchThreads), rows)
			bench.PrintBatchSizes(os.Stdout, rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-batch", rows)
			}
			return nil
		},
		"netload": func() error {
			n := 4
			if len(replicas) > 0 {
				n = replicas[0]
			}
			rows, err := bench.RunNetload(bench.NetloadConfig{
				Replicas: n, Duration: *duration, Warmup: 300 * time.Millisecond,
			})
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Netload — real TCP end to end, binary wire codec (n=%d)", n), rows)
			if csvw != nil {
				return csvw.WriteAblation("netload", rows)
			}
			return nil
		},
		"ablation-shard": func() error {
			const n = 4
			rows, err := bench.RunAblationShard(n, []int{1, 2, 4}, *duration)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				fmt.Sprintf("Ablation — horizontal sharding: S lease/broadcast groups under lease rotation (n=%d, disjoint + 10%% cross-shard mixes)", n), rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-shard", rows)
			}
			return nil
		},
		"ablation-bloom": func() error {
			rows, err := bench.RunAblationBloom(3, []float64{0, 0.001, 0.01, 0.05, 0.15}, *duration)
			if err != nil {
				return err
			}
			bench.PrintAblation(os.Stdout,
				"Ablation — CERT read-set Bloom encoding: size vs spurious aborts (D2STM trade-off)", rows)
			if csvw != nil {
				return csvw.WriteAblation("ablation-bloom", rows)
			}
			return nil
		},
	}

	order := []string{"fig3a", "fig3b", "fig4", "latency", "ablation-opt", "ablation-cc", "ablation-bloom", "ablation-locality", "ablation-routing", "ablation-batch", "ablation-shard", "netload"}
	if *experiment != "all" {
		fn, ok := experiments[*experiment]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want one of %s, all)",
				*experiment, strings.Join(order, ", "))
		}
		return fn()
	}
	for _, name := range order {
		if err := experiments[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

// runLoadgen hammers a live node's client port with pipelined incs and
// reports throughput plus the admission-control shed count. Shed requests
// are retried after a backoff — the overloaded status is retryable by
// contract — so the reported ops/s counts executed requests only.
func runLoadgen(target string, conns, threads, keys int, duration time.Duration) error {
	if target == "" {
		return fmt.Errorf("-loadgen requires -target host:port")
	}
	client := clientsrv.Dial(clientsrv.ClientConfig{Addr: target, Conns: conns})
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", target, err)
	}

	var (
		ok    atomic.Int64
		shed  atomic.Int64
		fails atomic.Int64
		stop  atomic.Bool
		wg    sync.WaitGroup
	)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("lg:%d", (t+i*threads)%keys)
				p, err := client.Do(wire.OpInc, key, 1)
				switch {
				case err != nil:
					fails.Add(1)
					return
				case p.Status == wire.StatusOK:
					ok.Add(1)
				case p.Status == wire.StatusOverloaded:
					shed.Add(1)
					time.Sleep(time.Millisecond)
				default:
					fails.Add(1)
				}
			}
		}(t)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("loadgen %s: %d ops in %v (%.0f ops/s), %d shed (retried), %d failures\n",
		target, ok.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds(), shed.Load(), fails.Load())
	if fails.Load() > 0 {
		return fmt.Errorf("%d requests failed", fails.Load())
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad replica count %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}
